package experiments

import (
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/giraffe"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// FunctionalValidation reproduces §VI-a for one input set: the parent's
// exported extensions must match the proxy's output 100%, both directions.
func (s *Suite) FunctionalValidation(spec workload.Spec) (core.ValidationReport, error) {
	b, err := s.Bundle(spec)
	if err != nil {
		return core.ValidationReport{}, err
	}
	ix, err := s.Indexes(spec)
	if err != nil {
		return core.ValidationReport{}, err
	}
	parent, err := giraffe.Map(ix, b.Reads, giraffe.Options{
		Threads: s.cfg.Threads, CaptureSeeds: true,
	})
	if err != nil {
		return core.ValidationReport{}, err
	}
	proxy, err := core.Run(b.GBZ(), parent.Captured, core.Options{Threads: s.cfg.Threads, Obs: s.cfg.Obs})
	if err != nil {
		return core.ValidationReport{}, err
	}
	rep, err := core.Validate(parent.Extensions, proxy.Extensions)
	if err != nil {
		return core.ValidationReport{}, err
	}
	s.printf("%-8s %s\n", spec.Name, rep)
	return rep, nil
}

// FunctionalValidationAll runs §VI-a over every input set.
func (s *Suite) FunctionalValidationAll() ([]core.ValidationReport, error) {
	s.section("Functional validation (§VI-a): proxy output vs parent output")
	var out []core.ValidationReport
	for _, spec := range workload.AllSpecs() {
		rep, err := s.FunctionalValidation(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// Table5Result carries the hardware-counter comparison of Table V.
type Table5Result struct {
	Proxy, Parent counters.Counters
	Cosine        float64
}

// Table5 reproduces the hardware-counter validation (§VI-b): proxy and
// parent are run single-threaded on A-human with the counter model attached
// to only the code the proxy covers (the two critical functions), and the
// counter vectors are compared with cosine similarity (paper: 0.9996).
func (s *Suite) Table5() (Table5Result, error) {
	spec := workload.AHuman()
	b, err := s.Bundle(spec)
	if err != nil {
		return Table5Result{}, err
	}
	ix, err := s.Indexes(spec)
	if err != nil {
		return Table5Result{}, err
	}
	// Parent, instrumented: the probe fires only inside the critical
	// functions, matching the paper's selective instrumentation.
	hParent := counters.NewDefaultHierarchy()
	parent, err := giraffe.Map(ix, b.Reads, giraffe.Options{
		Threads: 1, Probe: hParent, CaptureSeeds: true,
	})
	if err != nil {
		return Table5Result{}, err
	}
	// Proxy, instrumented.
	hProxy := counters.NewDefaultHierarchy()
	if _, err := core.Run(b.GBZ(), parent.Captured, core.Options{Threads: 1, Probe: hProxy}); err != nil {
		return Table5Result{}, err
	}
	res := Table5Result{
		Proxy:  hProxy.Snapshot(counters.DefaultCycleModel),
		Parent: hParent.Snapshot(counters.DefaultCycleModel),
	}
	cos, err := stats.Cosine(res.Proxy.Vector(), res.Parent.Vector())
	if err != nil {
		return Table5Result{}, err
	}
	res.Cosine = cos

	s.section("Table V: hardware counters, seed-and-extension on A-human")
	s.printf("%-12s %12s %6s %12s %12s %12s %12s %8s %8s\n",
		"application", "instr", "IPC", "L1DA", "L1DM", "LLDA", "LLDM", "L1 miss", "LLC miss")
	row := func(name string, c counters.Counters) {
		s.printf("%-12s %12d %6.2f %12d %12d %12d %12d %8.4f %8.3f\n",
			name, c.Instr, c.IPC, c.L1DA, c.L1DM, c.LLDA, c.LLDM, c.L1MissRate(), c.LLCMissRate())
	}
	row("miniGiraffe", res.Proxy)
	row("Giraffe", res.Parent)
	s.printf("cosine similarity = %.4f (paper: 0.9996)\n", res.Cosine)
	return res, nil
}

// Table6Row compares proxy and parent execution times for one input set.
type Table6Row struct {
	Input         string
	ProxySeconds  float64
	ParentSeconds float64
	PercentDiff   float64
}

// Table6 reproduces the execution-time comparison (§VI-b): the proxy's
// mapping time versus the parent's *critical-function* time. The paper's
// parent column instruments only the code sections the proxy covers, so the
// comparison here sums the parent's cluster_seeds and
// process_until_threshold_c region times. Paper: the difference stays below
// 8.77% across inputs.
func (s *Suite) Table6() ([]Table6Row, error) {
	s.section("Table VI: execution time, proxy vs parent critical functions")
	s.printf("%-8s %12s %12s %8s\n", "input", "proxy (s)", "parent (s)", "% diff")
	var rows []Table6Row
	for _, spec := range workload.AllSpecs() {
		b, err := s.Bundle(spec)
		if err != nil {
			return nil, err
		}
		ix, err := s.Indexes(spec)
		if err != nil {
			return nil, err
		}
		var bestProxy, bestParent float64
		for rep := 0; rep < s.cfg.Repeats; rep++ {
			rec := newRegionRecorder(s.cfg.Threads)
			parent, err := giraffe.Map(ix, b.Reads, giraffe.Options{
				Threads: s.cfg.Threads, Trace: rec.rec, CaptureSeeds: rep == 0 && !s.hasCaptured(spec),
			})
			if err != nil {
				return nil, err
			}
			if parent.Captured != nil {
				s.captured[spec.Name] = parent.Captured
			}
			parentCrit := rec.criticalSeconds()
			_, recs, err := s.Captured(spec)
			if err != nil {
				return nil, err
			}
			// The proxy's computation *is* the critical functions; measure
			// it with the same region instrumentation so both columns count
			// identical work (the paper instruments only the code sections
			// the proxy covers).
			proxyRec := newRegionRecorder(s.cfg.Threads)
			if _, err := core.Run(b.GBZ(), recs, core.Options{
				Threads: s.cfg.Threads, Trace: proxyRec.rec,
			}); err != nil {
				return nil, err
			}
			proxyCrit := proxyRec.criticalSeconds()
			if rep == 0 || proxyCrit < bestProxy {
				bestProxy = proxyCrit
			}
			if rep == 0 || parentCrit < bestParent {
				bestParent = parentCrit
			}
		}
		diff := 100 * (bestProxy - bestParent) / bestParent
		rows = append(rows, Table6Row{
			Input: spec.Name, ProxySeconds: bestProxy, ParentSeconds: bestParent, PercentDiff: diff,
		})
		s.printf("%-8s %12.3f %12.3f %+8.2f\n", spec.Name, bestProxy, bestParent, diff)
	}
	return rows, nil
}

// hasCaptured reports whether seeds were already captured for the spec.
func (s *Suite) hasCaptured(spec workload.Spec) bool {
	_, ok := s.captured[spec.Name]
	return ok
}

// regionRecorder wraps a trace recorder with a critical-function-time
// helper: the summed wall time of the two regions the proxy covers, divided
// by the worker count (regions run concurrently, so per-worker sums
// approximate wall time on a saturated run).
type regionRecorder struct {
	rec     *trace.Recorder
	workers int
}

func newRegionRecorder(workers int) *regionRecorder {
	return &regionRecorder{rec: trace.NewRecorder(workers), workers: workers}
}

func (r *regionRecorder) criticalSeconds() float64 {
	var total float64
	for _, perWorker := range r.rec.RegionTotals() {
		total += perWorker[trace.RegionCluster].Seconds()
		total += perWorker[trace.RegionThresholdC].Seconds()
	}
	return total / float64(r.workers)
}
