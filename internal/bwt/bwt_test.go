package bwt

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSuffixArraySmall(t *testing.T) {
	text := []byte("banana")
	sa := SuffixArray(text)
	want := []int{5, 3, 1, 0, 4, 2} // a, ana, anana, banana, na, nana
	for i := range want {
		if sa[i] != want[i] {
			t.Fatalf("sa = %v, want %v", sa, want)
		}
	}
}

func TestSuffixArraySortedProperty(t *testing.T) {
	f := func(raw []byte) bool {
		// Map to a small alphabet to force ties.
		text := make([]byte, len(raw))
		for i, b := range raw {
			text[i] = 'a' + b%3
		}
		sa := SuffixArray(text)
		if len(sa) != len(text) {
			return false
		}
		seen := make([]bool, len(text))
		for _, s := range sa {
			if s < 0 || s >= len(text) || seen[s] {
				return false
			}
			seen[s] = true
		}
		for i := 1; i < len(sa); i++ {
			if bytes.Compare(text[sa[i-1]:], text[sa[i]:]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransformKnown(t *testing.T) {
	bw, primary, err := Transform([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(bw) != "c\x00ab" || primary != 1 {
		t.Errorf("Transform(abc) = %q primary %d", bw, primary)
	}
}

func TestTransformRejectsSentinel(t *testing.T) {
	if _, _, err := Transform([]byte{'a', 0, 'b'}); err == nil {
		t.Error("want error for text containing 0x00")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		text := make([]byte, len(raw))
		for i, b := range raw {
			text[i] = 'A' + b%4
		}
		bw, primary, err := Transform(text)
		if err != nil {
			return false
		}
		back, err := Invert(bw, primary)
		if err != nil {
			return false
		}
		return bytes.Equal(back, text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvertErrors(t *testing.T) {
	if _, err := Invert(nil, 0); err == nil {
		t.Error("empty bwt accepted")
	}
	if _, err := Invert([]byte{0}, 5); err == nil {
		t.Error("bad primary accepted")
	}
}

func naiveCount(text, pattern string) int {
	if pattern == "" {
		return len(text) + 1
	}
	n := 0
	for i := 0; i+len(pattern) <= len(text); i++ {
		if text[i:i+len(pattern)] == pattern {
			n++
		}
	}
	return n
}

func TestFMIndexCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	for i := 0; i < 700; i++ {
		sb.WriteByte("ACGT"[rng.Intn(4)])
	}
	text := sb.String()
	idx, err := NewFMIndex([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Check(); err != nil {
		t.Fatal(err)
	}
	patterns := []string{"A", "AC", "ACGT", "TTTT", "GCGC", "", "N", text[100:120], text[:40]}
	for trial := 0; trial < 50; trial++ {
		p := rng.Intn(len(text) - 12)
		patterns = append(patterns, text[p:p+3+rng.Intn(9)])
	}
	for _, p := range patterns {
		want := naiveCount(text, p)
		if got := idx.Count([]byte(p)); got != want {
			t.Errorf("Count(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestFMIndexLocate(t *testing.T) {
	text := []byte("abracadabra")
	idx, err := NewFMIndex(text)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Locate([]byte("abra"))
	want := []int{0, 7}
	if len(got) != len(want) {
		t.Fatalf("Locate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Locate = %v, want %v", got, want)
		}
	}
	if locs := idx.Locate([]byte("zzz")); locs != nil {
		t.Errorf("Locate(zzz) = %v, want nil", locs)
	}
	if locs := idx.Locate(nil); locs != nil {
		t.Errorf("Locate(empty) = %v, want nil", locs)
	}
}

func TestFMIndexLocateRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	text := make([]byte, 513)
	for i := range text {
		text[i] = "ab"[rng.Intn(2)]
	}
	idx, err := NewFMIndex(text)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		plen := 1 + rng.Intn(7)
		start := rng.Intn(len(text) - plen)
		p := text[start : start+plen]
		got := idx.Locate(p)
		var want []int
		for i := 0; i+len(p) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(p)], p) {
				want = append(want, i)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("Locate(%q): %d hits, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Locate(%q) = %v, want %v", p, got, want)
			}
		}
	}
}

func TestFMIndexExtract(t *testing.T) {
	text := []byte("the quick brown fox")
	idx, err := NewFMIndex(text)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.Extract(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "quick" {
		t.Errorf("Extract = %q, want quick", got)
	}
	if _, err := idx.Extract(-1, 3); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := idx.Extract(3, 100); err == nil {
		t.Error("overlong end accepted")
	}
}

func TestFMIndexEmptyText(t *testing.T) {
	idx, err := NewFMIndex(nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Errorf("Len = %d", idx.Len())
	}
	if idx.Contains([]byte("a")) {
		t.Error("empty text contains 'a'")
	}
}

func TestFMIndexLargeAlphabet(t *testing.T) {
	text := []byte("m\xffi\x80x\x01e\x02d bytes \xfe\xfd")
	idx, err := NewFMIndex(text)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Contains([]byte{0xfe, 0xfd}) {
		t.Error("missing high-byte pattern")
	}
	if idx.Count([]byte{0xff}) != 1 {
		t.Error("wrong count for 0xff")
	}
}

func BenchmarkFMIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	text := make([]byte, 1<<14)
	for i := range text {
		text[i] = "ACGT"[rng.Intn(4)]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewFMIndex(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFMIndexCount(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	text := make([]byte, 1<<15)
	for i := range text {
		text[i] = "ACGT"[rng.Intn(4)]
	}
	idx, err := NewFMIndex(text)
	if err != nil {
		b.Fatal(err)
	}
	pattern := text[1024:1056]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Count(pattern)
	}
}
