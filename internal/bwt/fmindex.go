package bwt

import (
	"errors"
	"fmt"
)

// occSampleRate is the spacing of occurrence-table checkpoints; rank queries
// scan at most this many BWT bytes past a checkpoint.
const occSampleRate = 128

// saSampleRate is the spacing of suffix-array samples used by Locate.
const saSampleRate = 32

// FMIndex is a Full-text Minute-space index over a byte string: the BWT plus
// cumulative character counts and sampled occurrence/suffix-array tables.
// It supports backward-search Count and Locate.
type FMIndex struct {
	bwt     []byte
	primary int
	// c[ch] = number of characters in the BWT strictly smaller than ch.
	c [257]int
	// occ checkpoints: occ[(i/occSampleRate)][ch] = occurrences of ch in
	// bwt[0:i-i%occSampleRate). Stored per present character via a dense map
	// keyed by the alphabet slice to keep memory modest for small alphabets.
	alphabet []byte
	chIdx    [256]int16 // -1 when absent
	occ      [][]int32
	// Sampled SA: samples[j] = SA value at BWT row r when r%saSampleRate==0,
	// taken over text+sentinel coordinates.
	samples []int32
	n       int // len(text), excludes sentinel
}

// NewFMIndex builds the index for text. Text must not contain 0x00.
func NewFMIndex(text []byte) (*FMIndex, error) {
	bw, primary, err := Transform(text)
	if err != nil {
		return nil, err
	}
	idx := &FMIndex{bwt: bw, primary: primary, n: len(text)}
	var counts [256]int
	for _, ch := range bw {
		counts[ch]++
	}
	total := 0
	for ch := 0; ch < 256; ch++ {
		idx.c[ch] = total
		total += counts[ch]
	}
	idx.c[256] = total
	for i := range idx.chIdx {
		idx.chIdx[i] = -1
	}
	for ch := 0; ch < 256; ch++ {
		if counts[ch] > 0 {
			idx.chIdx[ch] = int16(len(idx.alphabet))
			idx.alphabet = append(idx.alphabet, byte(ch))
		}
	}
	// Occurrence checkpoints.
	nCk := len(bw)/occSampleRate + 1
	idx.occ = make([][]int32, nCk)
	running := make([]int32, len(idx.alphabet))
	for i := 0; i <= len(bw); i++ {
		if i%occSampleRate == 0 {
			ck := make([]int32, len(running))
			copy(ck, running)
			idx.occ[i/occSampleRate] = ck
		}
		if i < len(bw) {
			running[idx.chIdx[bw[i]]]++
		}
	}
	// SA samples: recompute SA (Transform discarded it). For the sentinel
	// row ordering used by Transform, row 0 ↦ position n (the sentinel) and
	// row i+1 ↦ sa[i].
	sa := SuffixArray(text)
	for row := 0; row < len(bw); row += saSampleRate {
		var pos int
		if row == 0 {
			pos = len(text)
		} else {
			pos = sa[row-1]
		}
		idx.samples = append(idx.samples, int32(pos))
	}
	return idx, nil
}

// Len returns the indexed text length (excluding the sentinel).
func (f *FMIndex) Len() int { return f.n }

// rank returns the number of occurrences of ch in bwt[0:i).
func (f *FMIndex) rank(ch byte, i int) int {
	ci := f.chIdx[ch]
	if ci < 0 {
		return 0
	}
	ck := i / occSampleRate
	cnt := int(f.occ[ck][ci])
	for j := ck * occSampleRate; j < i; j++ {
		if f.bwt[j] == ch {
			cnt++
		}
	}
	return cnt
}

// lf computes the LF mapping of BWT row i.
func (f *FMIndex) lf(i int) int {
	ch := f.bwt[i]
	return f.c[ch] + f.rank(ch, i)
}

// Count returns the number of occurrences of pattern in the text using
// backward search. The empty pattern yields the full search interval, n+1.
func (f *FMIndex) Count(pattern []byte) int {
	lo, hi, ok := f.interval(pattern)
	if !ok {
		return 0
	}
	return hi - lo
}

// Contains reports whether the pattern occurs in the text.
func (f *FMIndex) Contains(pattern []byte) bool { return f.Count(pattern) > 0 }

// interval performs backward search, returning the BWT row interval [lo,hi)
// of suffixes prefixed by pattern.
func (f *FMIndex) interval(pattern []byte) (lo, hi int, ok bool) {
	lo, hi = 0, len(f.bwt)
	for i := len(pattern) - 1; i >= 0; i-- {
		ch := pattern[i]
		if f.chIdx[ch] < 0 {
			return 0, 0, false
		}
		lo = f.c[ch] + f.rank(ch, lo)
		hi = f.c[ch] + f.rank(ch, hi)
		if lo >= hi {
			return 0, 0, false
		}
	}
	return lo, hi, true
}

// Locate returns the sorted text positions of all occurrences of pattern.
func (f *FMIndex) Locate(pattern []byte) []int {
	lo, hi, ok := f.interval(pattern)
	if !ok || len(pattern) == 0 {
		return nil
	}
	out := make([]int, 0, hi-lo)
	for row := lo; row < hi; row++ {
		out = append(out, f.position(row))
	}
	insertionSortInts(out)
	return out
}

// position resolves BWT row → text position by LF-walking to a sample.
func (f *FMIndex) position(row int) int {
	steps := 0
	for row%saSampleRate != 0 {
		row = f.lf(row)
		steps++
	}
	pos := int(f.samples[row/saSampleRate]) + steps
	total := f.n + 1
	if pos >= total {
		pos -= total
	}
	return pos
}

func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Extract reconstructs text[start:end) from the index (used to verify the
// index is self-contained).
func (f *FMIndex) Extract(start, end int) ([]byte, error) {
	if start < 0 || end > f.n || start > end {
		return nil, fmt.Errorf("bwt: Extract range [%d,%d) outside [0,%d)", start, end, f.n)
	}
	// Reconstruct the whole text by inversion, then slice. The FM-index is a
	// reference/validation structure in this codebase, not the hot path, so
	// simplicity wins over a sampled-extract.
	text, err := Invert(f.bwt, f.primary)
	if err != nil {
		return nil, err
	}
	return text[start:end], nil
}

// ErrCorrupt reports structural corruption detected by Check.
var ErrCorrupt = errors.New("bwt: corrupt index")

// Check verifies internal invariants: exactly one sentinel, C-array totals,
// checkpoint monotonicity.
func (f *FMIndex) Check() error {
	sentinels := 0
	for _, ch := range f.bwt {
		if ch == sentinel {
			sentinels++
		}
	}
	if sentinels != 1 {
		return fmt.Errorf("%w: %d sentinels", ErrCorrupt, sentinels)
	}
	if f.c[256] != len(f.bwt) {
		return fmt.Errorf("%w: C total %d != %d", ErrCorrupt, f.c[256], len(f.bwt))
	}
	if f.bwt[f.primary] != sentinel {
		return fmt.Errorf("%w: primary row %d is not the sentinel", ErrCorrupt, f.primary)
	}
	return nil
}
