// Package bwt implements the Burrows-Wheeler Transform and an FM-index over
// byte strings. The BWT permutes a string to make it more compressible
// (Manzini, JACM 2001) and, combined with rank structures, yields the
// Full-text Minute-space (FM) index of Ferragina & Manzini — the text-index
// machinery that the Graph BWT (package gbwt) generalises to paths in a
// variation graph.
package bwt

import (
	"errors"
	"sort"
)

// sentinel terminates the text inside the index. Input text must not contain
// it.
const sentinel byte = 0

// ErrSentinelInText reports a 0x00 byte in the input text.
var ErrSentinelInText = errors.New("bwt: text contains the 0x00 sentinel byte")

// SuffixArray computes the suffix array of text (no sentinel) using prefix
// doubling: O(n log^2 n) with deterministic output. sa[i] is the start of the
// i-th smallest suffix.
func SuffixArray(text []byte) []int {
	n := len(text)
	if n == 0 {
		return nil
	}
	sa := make([]int, n)
	rank := make([]int, n)
	tmp := make([]int, n)
	for i := 0; i < n; i++ {
		sa[i] = i
		rank[i] = int(text[i])
	}
	for k := 1; ; k *= 2 {
		key := func(i int) (int, int) {
			second := -1
			if i+k < n {
				second = rank[i+k]
			}
			return rank[i], second
		}
		sort.Slice(sa, func(a, b int) bool {
			r1a, r2a := key(sa[a])
			r1b, r2b := key(sa[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			r1p, r2p := key(sa[i-1])
			r1c, r2c := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if r1p != r1c || r2p != r2c {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == n-1 {
			break
		}
	}
	return sa
}

// Transform returns the Burrows-Wheeler Transform of text||sentinel, together
// with the position of the sentinel in the output (the "primary index"
// needed for inversion).
func Transform(text []byte) (bwt []byte, primary int, err error) {
	for _, c := range text {
		if c == sentinel {
			return nil, 0, ErrSentinelInText
		}
	}
	// SA of text+sentinel: the sentinel suffix is the smallest, so it sorts
	// first; compute the SA of the text alone and prepend the sentinel
	// position.
	n := len(text)
	sa := SuffixArray(text)
	bwt = make([]byte, n+1)
	// Row 0 corresponds to the suffix starting at the sentinel (position n);
	// its preceding character is text[n-1] (or sentinel if text is empty).
	if n == 0 {
		return []byte{sentinel}, 0, nil
	}
	bwt[0] = text[n-1]
	primary = -1
	for i, s := range sa {
		if s == 0 {
			bwt[i+1] = sentinel
			primary = i + 1
		} else {
			bwt[i+1] = text[s-1]
		}
	}
	return bwt, primary, nil
}

// Invert reconstructs the original text from its BWT and primary index,
// inverting Transform.
func Invert(bwt []byte, primary int) ([]byte, error) {
	n := len(bwt)
	if n == 0 {
		return nil, errors.New("bwt: empty transform")
	}
	if primary < 0 || primary >= n {
		return nil, errors.New("bwt: primary index out of range")
	}
	// LF mapping via counting sort.
	var counts [256]int
	for _, c := range bwt {
		counts[c]++
	}
	var cum [256]int
	total := 0
	for c := 0; c < 256; c++ {
		cum[c] = total
		total += counts[c]
	}
	lf := make([]int, n)
	var seen [256]int
	for i, c := range bwt {
		lf[i] = cum[c] + seen[c]
		seen[c]++
	}
	// Row 0 is always the rotation beginning with the sentinel; its BWT
	// character is the last text character, and following LF walks the text
	// right-to-left, ending at the primary (sentinel-carrying) row.
	out := make([]byte, n-1)
	row := 0
	for i := n - 2; i >= 0; i-- {
		c := bwt[row]
		if c == sentinel {
			return nil, errors.New("bwt: unexpected interior sentinel")
		}
		out[i] = c
		row = lf[row]
	}
	if row != primary {
		return nil, errors.New("bwt: inversion did not terminate at the primary row")
	}
	return out, nil
}
