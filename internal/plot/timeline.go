package plot

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// WriteTimelineSVG renders a per-worker Gantt view of recorded trace spans —
// the paper's Figure 2 ("Timeline of how Giraffe uses 16 threads for the
// annotated portions of the code"). Each worker is a row; spans are
// rectangles coloured by region.
func WriteTimelineSVG(w io.Writer, rec *trace.Recorder, title string) error {
	workers := rec.Workers()
	if workers == 0 {
		return fmt.Errorf("plot: empty recorder")
	}
	// Time extent and region palette assignment.
	var maxEnd time.Duration
	regionColor := map[string]string{}
	var regions []string
	total := 0
	for wk := 0; wk < workers; wk++ {
		for _, s := range rec.Spans(wk) {
			if end := s.Start + s.Dur; end > maxEnd {
				maxEnd = end
			}
			if _, ok := regionColor[s.Region]; !ok {
				regionColor[s.Region] = palette[len(regions)%len(palette)]
				regions = append(regions, s.Region)
			}
			total++
		}
	}
	if total == 0 {
		return fmt.Errorf("plot: recorder has no spans")
	}
	sort.Strings(regions)

	const (
		rowH   = 18
		width  = 900
		leftM  = 70
		rightM = 150
		topM   = 30
	)
	height := topM + workers*rowH + 40
	plotW := float64(width - leftM - rightM)
	px := func(t time.Duration) float64 {
		return float64(leftM) + float64(t)/float64(maxEnd)*plotW
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" text-anchor="middle">%s</text>`+"\n", width/2, escape(title))
	for wk := 0; wk < workers; wk++ {
		y := topM + wk*rowH
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" text-anchor="end">thread %d</text>`+"\n",
			leftM-6, y+rowH-6, wk)
		for _, s := range rec.Spans(wk) {
			x0 := px(s.Start)
			x1 := px(s.Start + s.Dur)
			if x1-x0 < 0.5 {
				x1 = x0 + 0.5 // keep microsecond spans visible
			}
			fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"/>`+"\n",
				x0, y+2, x1-x0, rowH-4, regionColor[s.Region])
		}
	}
	// Time axis (ms).
	axisY := topM + workers*rowH + 12
	for i := 0; i <= 4; i++ {
		t := time.Duration(float64(maxEnd) * float64(i) / 4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%.1fms</text>`+"\n",
			px(t), axisY, float64(t.Microseconds())/1000)
	}
	// Region legend.
	for i, r := range regions {
		ly := topM + 14*i
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			width-rightM+8, ly, regionColor[r])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9">%s</text>`+"\n",
			width-rightM+22, ly+9, escape(r))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
