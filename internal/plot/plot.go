// Package plot renders minimal SVG line and bar charts with the standard
// library only. The paper's artifact produces its figures with R scripts;
// this reproduction's experiment binaries emit the same figures as
// self-contained SVG files (Figure 5 speedup curves, Figure 6 capacity
// sweeps, Figure 7 makespan bars).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Dashed bool
}

// palette cycles through distinguishable stroke colours.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// Chart is a configured plot.
type Chart struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int
	Series        []Series
	// Bars, when non-empty, renders a grouped bar chart instead of lines.
	Bars []Bar
}

// Bar is one labelled bar-group entry.
type Bar struct {
	Label  string
	Values []float64 // one value per group member
	Groups []string  // member names (shared across bars; set on the first)
}

// margins in pixels.
const (
	marginLeft   = 56
	marginRight  = 16
	marginTop    = 28
	marginBottom = 42
)

// WriteLineSVG renders the chart's series as an SVG line plot.
func (c *Chart) WriteLineSVG(w io.Writer) error {
	if c.Width <= 0 {
		c.Width = 560
	}
	if c.Height <= 0 {
		c.Height = 360
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("plot: no data")
	}
	if minY > 0 {
		minY = 0
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	plotW := float64(c.Width - marginLeft - marginRight)
	plotH := float64(c.Height - marginTop - marginBottom)
	px := func(x float64) float64 { return marginLeft + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	c.header(&b)
	c.axes(&b, minX, maxX, minY, maxY, px, py)
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8"%s points="%s"/>`+"\n",
			color, dash, strings.Join(pts, " "))
		// Legend entry.
		ly := marginTop + 14*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			c.Width-marginRight-110, ly, c.Width-marginRight-90, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n",
			c.Width-marginRight-85, ly+3, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteBarSVG renders grouped bars (one group per Bar, one bar per value).
func (c *Chart) WriteBarSVG(w io.Writer) error {
	if c.Width <= 0 {
		c.Width = 560
	}
	if c.Height <= 0 {
		c.Height = 360
	}
	if len(c.Bars) == 0 {
		return fmt.Errorf("plot: no bars")
	}
	maxY := math.Inf(-1)
	nVals := 0
	for _, bar := range c.Bars {
		for _, v := range bar.Values {
			maxY = math.Max(maxY, v)
		}
		if len(bar.Values) > nVals {
			nVals = len(bar.Values)
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	plotW := float64(c.Width - marginLeft - marginRight)
	plotH := float64(c.Height - marginTop - marginBottom)
	py := func(y float64) float64 { return marginTop + plotH - y/maxY*plotH }

	var b strings.Builder
	c.header(&b)
	c.axes(&b, 0, float64(len(c.Bars)), 0, maxY,
		func(x float64) float64 { return marginLeft + x/float64(len(c.Bars))*plotW },
		py)
	groupW := plotW / float64(len(c.Bars))
	barW := groupW * 0.8 / float64(nVals)
	for gi, bar := range c.Bars {
		for vi, v := range bar.Values {
			x := marginLeft + float64(gi)*groupW + groupW*0.1 + float64(vi)*barW
			y := py(v)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW*0.92, marginTop+plotH-y, palette[vi%len(palette)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%s</text>`+"\n",
			marginLeft+(float64(gi)+0.5)*groupW, c.Height-marginBottom+14, escape(bar.Label))
	}
	if len(c.Bars[0].Groups) > 0 {
		for vi, name := range c.Bars[0].Groups {
			ly := marginTop + 14*vi
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
				c.Width-marginRight-110, ly-8, palette[vi%len(palette)])
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n",
				c.Width-marginRight-95, ly+1, escape(name))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// header opens the SVG document with title and axis labels.
func (c *Chart) header(b *strings.Builder) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		c.Width, c.Height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.Width, c.Height)
	fmt.Fprintf(b, `<text x="%d" y="16" font-size="13" text-anchor="middle">%s</text>`+"\n",
		c.Width/2, escape(c.Title))
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
		c.Width/2, c.Height-8, escape(c.XLabel))
	fmt.Fprintf(b, `<text x="14" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		c.Height/2, c.Height/2, escape(c.YLabel))
}

// axes draws the frame and tick labels.
func (c *Chart) axes(b *strings.Builder, minX, maxX, minY, maxY float64, px, py func(float64) float64) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n",
		marginLeft, marginTop, c.Width-marginLeft-marginRight, c.Height-marginTop-marginBottom)
	for i := 0; i <= 4; i++ {
		xv := minX + (maxX-minX)*float64(i)/4
		yv := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%s</text>`+"\n",
			px(xv), c.Height-marginBottom+12, formatTick(xv))
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="9" text-anchor="end">%s</text>`+"\n",
			marginLeft-4, py(yv)+3, formatTick(yv))
	}
}

// formatTick trims trailing zeros.
func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

// escape handles the XML special characters in labels.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
