package plot

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func lineChart() *Chart {
	return &Chart{
		Title:  "speedup",
		XLabel: "threads",
		YLabel: "x",
		Series: []Series{
			{Name: "A-human", X: []float64{1, 2, 4}, Y: []float64{1, 1.9, 3.5}},
			{Name: "ideal", X: []float64{1, 2, 4}, Y: []float64{1, 2, 4}, Dashed: true},
		},
	}
}

func TestWriteLineSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := lineChart().WriteLineSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "A-human", "ideal",
		"stroke-dasharray", "speedup", "threads",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Errorf("%d polylines, want 2", n)
	}
}

func TestWriteLineSVGNoData(t *testing.T) {
	c := &Chart{Title: "empty"}
	if err := c.WriteLineSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
}

func TestWriteBarSVG(t *testing.T) {
	c := &Chart{
		Title: "makespan", XLabel: "input", YLabel: "s",
		Bars: []Bar{
			{Label: "A", Values: []float64{2.0, 1.5}, Groups: []string{"default", "tuned"}},
			{Label: "B", Values: []float64{4.0, 3.9}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteBarSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "<rect"); n < 5 { // frame + bg + 4 bars
		t.Errorf("%d rects, want ≥5", n)
	}
	for _, want := range []string{"default", "tuned", ">A<", ">B<"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestWriteBarSVGNoData(t *testing.T) {
	c := &Chart{}
	if err := c.WriteBarSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty bar chart accepted")
	}
}

func TestEscape(t *testing.T) {
	c := &Chart{
		Title: "a<b & c>d",
		Series: []Series{
			{Name: "x<y", X: []float64{0, 1}, Y: []float64{0, 1}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteLineSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "a<b") || !strings.Contains(out, "a&lt;b &amp; c&gt;d") {
		t.Error("labels not escaped")
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(4) != "4" {
		t.Errorf("formatTick(4) = %q", formatTick(4))
	}
	if formatTick(0.125) != "0.12" {
		t.Errorf("formatTick(0.125) = %q", formatTick(0.125))
	}
}

func TestDegenerateRanges(t *testing.T) {
	// Single point: ranges collapse; must not divide by zero.
	c := &Chart{Series: []Series{{Name: "p", X: []float64{3}, Y: []float64{7}}}}
	var buf bytes.Buffer
	if err := c.WriteLineSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN in SVG output")
	}
}

func TestWriteTimelineSVG(t *testing.T) {
	rec := trace.NewRecorder(3)
	now := time.Now()
	rec.Record(0, "cluster_seeds", now, 2*time.Millisecond)
	rec.Record(1, "process_until_threshold_c", now.Add(time.Millisecond), 3*time.Millisecond)
	rec.Record(2, "cluster_seeds", now.Add(2*time.Millisecond), time.Millisecond)
	var buf bytes.Buffer
	if err := WriteTimelineSVG(&buf, rec, "Figure 2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"thread 0", "thread 2", "cluster_seeds", "process_until_threshold_c", "ms<"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline SVG missing %q", want)
		}
	}
}

func TestWriteTimelineSVGEmpty(t *testing.T) {
	rec := trace.NewRecorder(2)
	if err := WriteTimelineSVG(&bytes.Buffer{}, rec, "x"); err == nil {
		t.Error("empty recorder accepted")
	}
}
