package vgraph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dna"
)

func gfaFixture(t *testing.T) *Pangenome {
	t.Helper()
	rng := rand.New(rand.NewSource(12))
	ref := make(dna.Sequence, 1200)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []Variant
	for pos := 100; pos < 1100; pos += 200 {
		vs = append(vs, Variant{Pos: pos, Kind: SNP, Alt: dna.Sequence{(ref[pos] + 1) & 3}})
	}
	pg, err := BuildPangenome(ref, vs, 24)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		alleles := make([]int, pg.NumSites())
		for i := range alleles {
			alleles[i] = rng.Intn(2)
		}
		path, err := pg.HaplotypePath(alleles)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pg.AddPath(path); err != nil {
			t.Fatal(err)
		}
	}
	return pg
}

func TestGFARoundTrip(t *testing.T) {
	pg := gfaFixture(t)
	var buf bytes.Buffer
	if err := pg.WriteGFA(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGFA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != pg.NumNodes() || got.NumEdges() != pg.NumEdges() || got.NumPaths() != pg.NumPaths() {
		t.Fatalf("shape mismatch after round trip: %d/%d/%d vs %d/%d/%d",
			got.NumNodes(), got.NumEdges(), got.NumPaths(),
			pg.NumNodes(), pg.NumEdges(), pg.NumPaths())
	}
	for id := NodeID(1); int(id) <= pg.NumNodes(); id++ {
		if !got.Seq(id).Equal(pg.Seq(id)) {
			t.Fatalf("node %d sequence mismatch", id)
		}
		if !reflect.DeepEqual(got.Successors(id), pg.Successors(id)) {
			t.Fatalf("node %d successors mismatch", id)
		}
	}
	for i := 0; i < pg.NumPaths(); i++ {
		if !reflect.DeepEqual(got.Path(i), pg.Path(i)) {
			t.Fatalf("path %d mismatch", i)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGFAFormatShape(t *testing.T) {
	pg := gfaFixture(t)
	var buf bytes.Buffer
	if err := pg.WriteGFA(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "H\tVN:Z:1.1" {
		t.Errorf("header = %q", lines[0])
	}
	var s, l, p int
	for _, line := range lines[1:] {
		switch line[0] {
		case 'S':
			s++
		case 'L':
			l++
		case 'P':
			p++
		}
	}
	if s != pg.NumNodes() || l != pg.NumEdges() || p != pg.NumPaths() {
		t.Errorf("S/L/P = %d/%d/%d, want %d/%d/%d", s, l, p,
			pg.NumNodes(), pg.NumEdges(), pg.NumPaths())
	}
}

func TestReadGFAErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"short S", "S\t1\n"},
		{"bad id", "S\tx\tACGT\n"},
		{"non-sequential id", "S\t5\tACGT\n"},
		{"bad base", "S\t1\tACGN\n"},
		{"short L", "S\t1\tAC\nS\t2\tGT\nL\t1\t+\t2\n"},
		{"reverse link", "S\t1\tAC\nS\t2\tGT\nL\t1\t-\t2\t+\t0M\n"},
		{"link to missing", "S\t1\tAC\nL\t1\t+\t9\t+\t0M\n"},
		{"reverse path", "S\t1\tAC\nS\t2\tGT\nL\t1\t+\t2\t+\t0M\nP\tx\t1-,2+\t*\n"},
		{"broken path", "S\t1\tAC\nS\t2\tGT\nP\tx\t1+,2+\t*\n"},
	}
	for _, tc := range cases {
		if _, err := ReadGFA(strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadGFASkipsComments(t *testing.T) {
	data := "# comment\nH\tVN:Z:1.1\nS\t1\tACGT\n\nW\tignored\n"
	g, err := ReadGFA(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 {
		t.Errorf("%d nodes", g.NumNodes())
	}
}
