package vgraph

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dna"
)

// VariantKind distinguishes the three variant classes the builder supports.
type VariantKind uint8

// Variant kinds, matching the classes a VCF encodes into a variation graph.
const (
	SNP VariantKind = iota
	Insertion
	Deletion
)

func (k VariantKind) String() string {
	switch k {
	case SNP:
		return "SNP"
	case Insertion:
		return "INS"
	case Deletion:
		return "DEL"
	default:
		return fmt.Sprintf("VariantKind(%d)", uint8(k))
	}
}

// Variant describes one site of variation against the linear reference.
//
//   - SNP: the single reference base at Pos is substituted; Alt holds the
//     alternative base(s), each becoming its own allele branch.
//   - Insertion: Alt is inserted between reference positions Pos-1 and Pos.
//   - Deletion: DelLen reference bases starting at Pos are skipped.
type Variant struct {
	Pos    int
	Kind   VariantKind
	Alt    dna.Sequence // SNP: one base; Insertion: inserted bases; unused for Deletion
	DelLen int          // Deletion only
}

// span returns the half-open reference interval the variant consumes.
func (v Variant) span() (start, end int) {
	switch v.Kind {
	case SNP:
		return v.Pos, v.Pos + 1
	case Insertion:
		return v.Pos, v.Pos
	case Deletion:
		return v.Pos, v.Pos + v.DelLen
	}
	return v.Pos, v.Pos
}

// site is one variation site in the pangenome's bubble chain: the shared
// prefix nodes leading into the site, followed by the allele branches.
// Allele 0 is always the reference allele.
type site struct {
	shared  []NodeID   // shared nodes preceding the bubble (possibly empty)
	alleles [][]NodeID // alleles[0] = ref branch; branches may be empty (pure deletion / skipped insertion)
}

// Pangenome is a variation graph built from a linear reference plus
// variants, retaining the bubble-chain structure so haplotypes can be
// derived as allele vectors.
type Pangenome struct {
	*Graph
	ref   dna.Sequence
	sites []site   // only sites with ≥2 alleles (real bubbles)
	tail  []NodeID // shared nodes after the final bubble
}

// NumSites returns the number of variation sites (bubbles).
func (p *Pangenome) NumSites() int { return len(p.sites) }

// NumAlleles returns the allele count at site i (≥ 2).
func (p *Pangenome) NumAlleles(i int) int { return len(p.sites[i].alleles) }

// Reference returns the linear reference the pangenome was built from.
func (p *Pangenome) Reference() dna.Sequence { return p.ref }

// HaplotypePath materialises the node path of the haplotype choosing
// alleles[i] at site i. Allele 0 is the reference allele. len(alleles) must
// equal NumSites().
func (p *Pangenome) HaplotypePath(alleles []int) ([]NodeID, error) {
	if len(alleles) != len(p.sites) {
		return nil, fmt.Errorf("vgraph: %d alleles for %d sites", len(alleles), len(p.sites))
	}
	var path []NodeID
	for i, s := range p.sites {
		path = append(path, s.shared...)
		a := alleles[i]
		if a < 0 || a >= len(s.alleles) {
			return nil, fmt.Errorf("vgraph: allele %d out of range at site %d (%d alleles)", a, i, len(s.alleles))
		}
		path = append(path, s.alleles[a]...)
	}
	path = append(path, p.tail...)
	if len(path) == 0 {
		return nil, errors.New("vgraph: empty haplotype path")
	}
	return path, nil
}

// BuildPangenome constructs a pangenome graph from a linear reference and a
// set of variants. Shared reference runs are chopped into nodes of at most
// nodeLen bases (VG uses 32 by default). Variants must not overlap; they are
// sorted internally.
func BuildPangenome(ref dna.Sequence, variants []Variant, nodeLen int) (*Pangenome, error) {
	if len(ref) == 0 {
		return nil, errors.New("vgraph: empty reference")
	}
	if nodeLen < 1 {
		return nil, fmt.Errorf("vgraph: nodeLen %d < 1", nodeLen)
	}
	vs := make([]Variant, len(variants))
	copy(vs, variants)
	sort.SliceStable(vs, func(i, j int) bool { return vs[i].Pos < vs[j].Pos })
	if err := checkVariants(ref, vs); err != nil {
		return nil, err
	}

	p := &Pangenome{Graph: &Graph{}, ref: ref}
	// addRun chops ref[start:end) into ≤nodeLen nodes with backbone coords.
	addRun := func(start, end int) ([]NodeID, error) {
		var ids []NodeID
		for pos := start; pos < end; pos += nodeLen {
			stop := pos + nodeLen
			if stop > end {
				stop = end
			}
			id, err := p.AddNode(ref[pos:stop].Clone())
			if err != nil {
				return nil, err
			}
			p.SetBackbone(id, int32(pos))
			ids = append(ids, id)
		}
		return ids, nil
	}

	cursor := 0 // next unconsumed reference position
	var pendingShared []NodeID
	for _, v := range vs {
		start, end := v.span()
		shared, err := addRun(cursor, start)
		if err != nil {
			return nil, err
		}
		pendingShared = append(pendingShared, shared...)

		var refBranch, altBranch []NodeID
		switch v.Kind {
		case SNP:
			id, err := p.AddNode(dna.Sequence{ref[v.Pos]})
			if err != nil {
				return nil, err
			}
			p.SetBackbone(id, int32(v.Pos))
			refBranch = []NodeID{id}
			alt, err := p.AddNode(v.Alt.Clone())
			if err != nil {
				return nil, fmt.Errorf("vgraph: SNP at %d: %w", v.Pos, err)
			}
			p.SetBackbone(alt, int32(v.Pos))
			altBranch = []NodeID{alt}
		case Insertion:
			ins, err := p.AddNode(v.Alt.Clone())
			if err != nil {
				return nil, fmt.Errorf("vgraph: insertion at %d: %w", v.Pos, err)
			}
			p.SetBackbone(ins, int32(v.Pos))
			altBranch = []NodeID{ins}
		case Deletion:
			refBranch, err = addRun(start, end)
			if err != nil {
				return nil, err
			}
		}
		p.sites = append(p.sites, site{
			shared:  pendingShared,
			alleles: [][]NodeID{refBranch, altBranch},
		})
		pendingShared = nil
		cursor = end
	}
	tail, err := addRun(cursor, len(ref))
	if err != nil {
		return nil, err
	}
	p.tail = tail

	if err := p.wireEdges(); err != nil {
		return nil, err
	}
	return p, nil
}

// checkVariants validates bounds, overlap, and payloads.
func checkVariants(ref dna.Sequence, sorted []Variant) error {
	prevEnd := 0
	for i, v := range sorted {
		start, end := v.span()
		switch v.Kind {
		case SNP:
			if len(v.Alt) != 1 {
				return fmt.Errorf("vgraph: SNP %d must have exactly one alt base, got %d", i, len(v.Alt))
			}
			if start >= 0 && start < len(ref) && v.Alt[0] == ref[start] {
				return fmt.Errorf("vgraph: SNP %d alt equals reference base at %d", i, start)
			}
		case Insertion:
			if len(v.Alt) == 0 {
				return fmt.Errorf("vgraph: insertion %d has empty payload", i)
			}
		case Deletion:
			if v.DelLen < 1 {
				return fmt.Errorf("vgraph: deletion %d has length %d", i, v.DelLen)
			}
		default:
			return fmt.Errorf("vgraph: variant %d has unknown kind %d", i, v.Kind)
		}
		if start < 0 || end > len(ref) {
			return fmt.Errorf("vgraph: variant %d span [%d,%d) outside reference [0,%d)", i, start, end, len(ref))
		}
		// Require at least one shared reference base between variants so
		// every bubble has distinct anchor nodes (and insertions never sit
		// flush against another variant).
		if start < prevEnd+1 && i > 0 {
			return fmt.Errorf("vgraph: variant %d at %d overlaps or abuts previous (end %d)", i, start, prevEnd)
		}
		if start == 0 || end == len(ref) {
			return fmt.Errorf("vgraph: variant %d touches reference boundary; leave flanks", i)
		}
		prevEnd = end
	}
	return nil
}

// wireEdges connects the bubble chain: shared runs are chains, each site's
// branches connect its entry (last node before the bubble) to its exit
// (first node after it), with empty branches becoming direct edges.
func (p *Pangenome) wireEdges() error {
	chain := func(ids []NodeID) error {
		for i := 1; i < len(ids); i++ {
			if err := p.AddEdge(ids[i-1], ids[i]); err != nil {
				return err
			}
		}
		return nil
	}
	// entry = last node emitted before each site's bubble. Because
	// checkVariants enforces ≥1 shared base between variants and non-boundary
	// variants, every bubble has a non-empty entry and exit.
	var entry NodeID
	exitOf := func(i int) NodeID {
		// first node after bubble i: next site's shared run, else its first
		// non-empty branch... sites always followed by shared or tail.
		if i+1 < len(p.sites) && len(p.sites[i+1].shared) > 0 {
			return p.sites[i+1].shared[0]
		}
		if i+1 >= len(p.sites) && len(p.tail) > 0 {
			return p.tail[0]
		}
		return Invalid
	}
	for i, s := range p.sites {
		if err := chain(s.shared); err != nil {
			return err
		}
		if len(s.shared) > 0 {
			if entry != Invalid {
				if err := p.AddEdge(entry, s.shared[0]); err != nil {
					return err
				}
			}
			entry = s.shared[len(s.shared)-1]
		}
		if entry == Invalid {
			return fmt.Errorf("vgraph: site %d has no entry node", i)
		}
		exit := exitOf(i)
		if exit == Invalid {
			return fmt.Errorf("vgraph: site %d has no exit node", i)
		}
		for _, branch := range s.alleles {
			if len(branch) == 0 {
				if err := p.AddEdge(entry, exit); err != nil {
					return err
				}
				continue
			}
			if err := chain(branch); err != nil {
				return err
			}
			if err := p.AddEdge(entry, branch[0]); err != nil {
				return err
			}
			if err := p.AddEdge(branch[len(branch)-1], exit); err != nil {
				return err
			}
		}
		entry = Invalid // consumed; next site's shared run starts fresh
		if i+1 < len(p.sites) && len(p.sites[i+1].shared) == 0 {
			return fmt.Errorf("vgraph: site %d directly abuts site %d", i, i+1)
		}
	}
	return chain(p.tail)
}

// HaplotypeSeq spells the DNA of the haplotype with the given allele vector
// without materialising the path twice.
func (p *Pangenome) HaplotypeSeq(alleles []int) (dna.Sequence, error) {
	path, err := p.HaplotypePath(alleles)
	if err != nil {
		return nil, err
	}
	var out dna.Sequence
	for _, id := range path {
		out = append(out, p.Seq(id)...)
	}
	return out, nil
}
