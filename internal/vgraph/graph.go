// Package vgraph implements variation graphs, the bioinformatics data
// structure Giraffe maps against: a directed acyclic sequence graph in which
// a path spells a genome, branches spell variation, and merges spell
// commonality (Garrison et al., "Variation graph toolkit...", Nat. Biotech
// 2018; Fig. 1 of the miniGiraffe paper).
//
// The package provides the raw graph (nodes carrying DNA segments plus
// edges), embedded haplotype paths, topological utilities, and a pangenome
// builder that constructs bubble structures from a linear reference plus a
// variant list — the same construction the VG toolkit performs from VCF
// input.
package vgraph

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dna"
)

// NodeID identifies a node. IDs are 1-based; 0 is reserved as the GBWT
// endmarker and never names a real node.
type NodeID uint32

// Invalid is the reserved zero NodeID.
const Invalid NodeID = 0

// Position is a graph position: an offset into a node's sequence. Rev marks
// positions on the reverse strand (the offset then counts from the node's
// reverse-complement start).
type Position struct {
	Node NodeID
	Off  int32
	Rev  bool
}

// String implements fmt.Stringer, e.g. "17+:3" / "17-:3".
func (p Position) String() string {
	strand := byte('+')
	if p.Rev {
		strand = '-'
	}
	return fmt.Sprintf("%d%c:%d", p.Node, strand, p.Off)
}

// Edge is a directed edge between two node IDs.
type Edge struct {
	From, To NodeID
}

// Graph is a directed acyclic sequence graph. The zero value is an empty
// graph ready for AddNode/AddEdge.
type Graph struct {
	seqs  []dna.Sequence // seqs[id-1] is the label of node id
	succ  [][]NodeID     // sorted successor lists, index id-1
	pred  [][]NodeID     // sorted predecessor lists, index id-1
	edges int
	paths [][]NodeID // embedded (haplotype) paths
	// backbone[id-1] is the projected linear-reference coordinate of the
	// node's first base; -1 when unset. Used by the distance index.
	backbone []int32
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.seqs) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// NumPaths returns the number of embedded paths.
func (g *Graph) NumPaths() int { return len(g.paths) }

// TotalSeqLen returns the summed length of all node labels.
func (g *Graph) TotalSeqLen() int {
	n := 0
	for _, s := range g.seqs {
		n += len(s)
	}
	return n
}

// AddNode appends a node with the given label and returns its ID. Empty
// labels are rejected: every node must spell at least one base.
func (g *Graph) AddNode(seq dna.Sequence) (NodeID, error) {
	if len(seq) == 0 {
		return Invalid, errors.New("vgraph: empty node label")
	}
	g.seqs = append(g.seqs, seq)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.backbone = append(g.backbone, -1)
	return NodeID(len(g.seqs)), nil
}

// Has reports whether id names a node in g.
func (g *Graph) Has(id NodeID) bool {
	return id != Invalid && int(id) <= len(g.seqs)
}

// Seq returns the label of node id. The returned slice aliases graph storage
// and must not be modified.
func (g *Graph) Seq(id NodeID) dna.Sequence { return g.seqs[id-1] }

// SeqLen returns the label length of node id.
func (g *Graph) SeqLen(id NodeID) int { return len(g.seqs[id-1]) }

// BaseAt returns base off of node id's label.
func (g *Graph) BaseAt(id NodeID, off int32) dna.Base { return g.seqs[id-1][off] }

// AddEdge inserts the edge from→to. Duplicate edges are ignored. It returns
// an error if either endpoint does not exist or the edge is a self-loop
// (the builder only produces DAGs).
func (g *Graph) AddEdge(from, to NodeID) error {
	if !g.Has(from) || !g.Has(to) {
		return fmt.Errorf("vgraph: edge %d->%d references missing node", from, to)
	}
	if from == to {
		return fmt.Errorf("vgraph: self-loop on node %d", from)
	}
	if insertSorted(&g.succ[from-1], to) {
		insertSorted(&g.pred[to-1], from)
		g.edges++
	}
	return nil
}

// insertSorted inserts v into the sorted slice *s if absent, reporting
// whether an insertion happened.
func insertSorted(s *[]NodeID, v NodeID) bool {
	lst := *s
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	if i < len(lst) && lst[i] == v {
		return false
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = v
	*s = lst
	return true
}

// HasEdge reports whether the edge from→to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	if !g.Has(from) || !g.Has(to) {
		return false
	}
	lst := g.succ[from-1]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= to })
	return i < len(lst) && lst[i] == to
}

// Successors returns node id's successors in ascending ID order. The slice
// aliases graph storage.
func (g *Graph) Successors(id NodeID) []NodeID { return g.succ[id-1] }

// Predecessors returns node id's predecessors in ascending ID order. The
// slice aliases graph storage.
func (g *Graph) Predecessors(id NodeID) []NodeID { return g.pred[id-1] }

// SetBackbone records the projected linear-reference coordinate of node id's
// first base. The distance index consumes these projections.
func (g *Graph) SetBackbone(id NodeID, pos int32) { g.backbone[id-1] = pos }

// Backbone returns the projected reference coordinate of node id, or -1 if
// none was recorded.
func (g *Graph) Backbone(id NodeID) int32 { return g.backbone[id-1] }

// ErrBrokenPath reports a path step without a connecting edge.
var ErrBrokenPath = errors.New("vgraph: path step without edge")

// AddPath embeds a path (a haplotype) and returns its index. Every
// consecutive pair of nodes must be connected by an edge.
func (g *Graph) AddPath(nodes []NodeID) (int, error) {
	if len(nodes) == 0 {
		return 0, errors.New("vgraph: empty path")
	}
	for i, id := range nodes {
		if !g.Has(id) {
			return 0, fmt.Errorf("vgraph: path step %d references missing node %d", i, id)
		}
		if i > 0 && !g.HasEdge(nodes[i-1], id) {
			return 0, fmt.Errorf("%w: %d->%d at step %d", ErrBrokenPath, nodes[i-1], id, i)
		}
	}
	g.paths = append(g.paths, nodes)
	return len(g.paths) - 1, nil
}

// Path returns embedded path i. The slice aliases graph storage.
func (g *Graph) Path(i int) []NodeID { return g.paths[i] }

// PathSeq spells out the DNA sequence of embedded path i.
func (g *Graph) PathSeq(i int) dna.Sequence {
	var out dna.Sequence
	for _, id := range g.paths[i] {
		out = append(out, g.seqs[id-1]...)
	}
	return out
}

// TopoOrder returns the nodes in a topological order (Kahn's algorithm).
// It returns an error if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	// Use a sorted frontier so the order is deterministic.
	var frontier []NodeID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, NodeID(i+1))
		}
	}
	order := make([]NodeID, 0, n)
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, s := range g.succ[id-1] {
			indeg[s-1]--
			if indeg[s-1] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("vgraph: graph contains a cycle")
	}
	return order, nil
}

// Validate checks structural invariants: successor/predecessor symmetry,
// sortedness, and acyclicity. Intended for tests and after deserialization.
func (g *Graph) Validate() error {
	for i := range g.seqs {
		id := NodeID(i + 1)
		if len(g.seqs[i]) == 0 {
			return fmt.Errorf("vgraph: node %d has empty label", id)
		}
		if !sort.SliceIsSorted(g.succ[i], func(a, b int) bool { return g.succ[i][a] < g.succ[i][b] }) {
			return fmt.Errorf("vgraph: node %d successors unsorted", id)
		}
		for _, s := range g.succ[i] {
			found := false
			for _, p := range g.pred[s-1] {
				if p == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("vgraph: edge %d->%d missing back-link", id, s)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}
