package vgraph

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
)

// refSeq builds a deterministic pseudo-random reference of length n.
func refSeq(n int, seed int64) dna.Sequence {
	rng := rand.New(rand.NewSource(seed))
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func snpAlt(ref dna.Base) dna.Base { return (ref + 1) & 3 }

func TestBuildPangenomeSNP(t *testing.T) {
	ref := dna.MustParse("ACGTACGTACGT")
	v := Variant{Pos: 5, Kind: SNP, Alt: dna.Sequence{snpAlt(ref[5])}}
	p, err := BuildPangenome(ref, []Variant{v}, 4)
	if err != nil {
		t.Fatalf("BuildPangenome: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumSites() != 1 {
		t.Fatalf("NumSites = %d, want 1", p.NumSites())
	}
	// Reference haplotype spells the reference.
	seq, err := p.HaplotypeSeq([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(ref) {
		t.Errorf("ref haplotype = %v, want %v", seq, ref)
	}
	// Alt haplotype differs only at position 5.
	alt, err := p.HaplotypeSeq([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(alt) != len(ref) {
		t.Fatalf("alt length = %d, want %d", len(alt), len(ref))
	}
	for i := range ref {
		want := ref[i]
		if i == 5 {
			want = snpAlt(ref[5])
		}
		if alt[i] != want {
			t.Errorf("alt[%d] = %v, want %v", i, alt[i], want)
		}
	}
}

func TestBuildPangenomeInsertion(t *testing.T) {
	ref := dna.MustParse("AAAACCCCGGGG")
	ins := dna.MustParse("TT")
	p, err := BuildPangenome(ref, []Variant{{Pos: 6, Kind: Insertion, Alt: ins}}, 5)
	if err != nil {
		t.Fatalf("BuildPangenome: %v", err)
	}
	refHap, err := p.HaplotypeSeq([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !refHap.Equal(ref) {
		t.Errorf("ref haplotype = %v, want %v", refHap, ref)
	}
	altHap, err := p.HaplotypeSeq([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append(ref[:6].Clone(), ins...), ref[6:]...)
	if !altHap.Equal(want) {
		t.Errorf("alt haplotype = %v, want %v", altHap, want)
	}
}

func TestBuildPangenomeDeletion(t *testing.T) {
	ref := dna.MustParse("AAAACCCCGGGG")
	p, err := BuildPangenome(ref, []Variant{{Pos: 4, Kind: Deletion, DelLen: 3}}, 5)
	if err != nil {
		t.Fatalf("BuildPangenome: %v", err)
	}
	refHap, err := p.HaplotypeSeq([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !refHap.Equal(ref) {
		t.Errorf("ref haplotype = %v, want %v", refHap, ref)
	}
	altHap, err := p.HaplotypeSeq([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := append(ref[:4].Clone(), ref[7:]...)
	if !altHap.Equal(want) {
		t.Errorf("alt haplotype = %v, want %v", altHap, want)
	}
}

func TestBuildPangenomeMixed(t *testing.T) {
	ref := refSeq(5000, 1)
	var vs []Variant
	for pos := 100; pos < 4900; pos += 250 {
		switch (pos / 250) % 3 {
		case 0:
			vs = append(vs, Variant{Pos: pos, Kind: SNP, Alt: dna.Sequence{snpAlt(ref[pos])}})
		case 1:
			vs = append(vs, Variant{Pos: pos, Kind: Insertion, Alt: refSeq(8, int64(pos))})
		case 2:
			vs = append(vs, Variant{Pos: pos, Kind: Deletion, DelLen: 12})
		}
	}
	p, err := BuildPangenome(ref, vs, 32)
	if err != nil {
		t.Fatalf("BuildPangenome: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumSites() != len(vs) {
		t.Fatalf("NumSites = %d, want %d", p.NumSites(), len(vs))
	}
	// Reference haplotype must reproduce the reference exactly.
	alleles := make([]int, p.NumSites())
	seq, err := p.HaplotypeSeq(alleles)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(ref) {
		t.Fatal("reference haplotype does not spell the reference")
	}
	// Every random haplotype path is edge-valid (AddPath validates edges).
	rng := rand.New(rand.NewSource(2))
	for h := 0; h < 10; h++ {
		for i := range alleles {
			alleles[i] = rng.Intn(p.NumAlleles(i))
		}
		path, err := p.HaplotypePath(alleles)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AddPath(path); err != nil {
			t.Fatalf("haplotype %d path invalid: %v", h, err)
		}
	}
}

func TestBuildPangenomeRejectsBadVariants(t *testing.T) {
	ref := dna.MustParse("ACGTACGTACGTACGT")
	cases := []struct {
		name string
		vs   []Variant
	}{
		{"snp at 0", []Variant{{Pos: 0, Kind: SNP, Alt: dna.Sequence{dna.C}}}},
		{"snp beyond end", []Variant{{Pos: 16, Kind: SNP, Alt: dna.Sequence{dna.C}}}},
		{"snp equals ref", []Variant{{Pos: 4, Kind: SNP, Alt: dna.Sequence{ref[4]}}}},
		{"snp multi-base alt", []Variant{{Pos: 4, Kind: SNP, Alt: dna.MustParse("AC")}}},
		{"empty insertion", []Variant{{Pos: 4, Kind: Insertion}}},
		{"zero-length deletion", []Variant{{Pos: 4, Kind: Deletion, DelLen: 0}}},
		{"deletion to end", []Variant{{Pos: 10, Kind: Deletion, DelLen: 6}}},
		{"overlapping", []Variant{
			{Pos: 4, Kind: Deletion, DelLen: 4},
			{Pos: 8, Kind: SNP, Alt: dna.Sequence{dna.A}},
		}},
	}
	for _, tc := range cases {
		if _, err := BuildPangenome(ref, tc.vs, 4); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestBuildPangenomeEmptyInputs(t *testing.T) {
	if _, err := BuildPangenome(nil, nil, 4); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := BuildPangenome(dna.MustParse("ACGT"), nil, 0); err == nil {
		t.Error("nodeLen 0 accepted")
	}
}

func TestHaplotypePathErrors(t *testing.T) {
	ref := dna.MustParse("ACGTACGTACGT")
	p, err := BuildPangenome(ref, []Variant{{Pos: 5, Kind: SNP, Alt: dna.Sequence{snpAlt(ref[5])}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.HaplotypePath(nil); err == nil {
		t.Error("wrong allele count accepted")
	}
	if _, err := p.HaplotypePath([]int{5}); err == nil {
		t.Error("out-of-range allele accepted")
	}
}

func TestBackbonePositionsMonotonicOnReference(t *testing.T) {
	ref := refSeq(2000, 3)
	var vs []Variant
	for pos := 100; pos < 1900; pos += 300 {
		vs = append(vs, Variant{Pos: pos, Kind: SNP, Alt: dna.Sequence{snpAlt(ref[pos])}})
	}
	p, err := BuildPangenome(ref, vs, 32)
	if err != nil {
		t.Fatal(err)
	}
	path, err := p.HaplotypePath(make([]int, p.NumSites()))
	if err != nil {
		t.Fatal(err)
	}
	pos := int32(-1)
	for _, id := range path {
		b := p.Backbone(id)
		if b <= pos {
			t.Fatalf("backbone not strictly increasing along reference: node %d at %d after %d", id, b, pos)
		}
		pos = b
	}
}
