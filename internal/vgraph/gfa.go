package vgraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dna"
)

// GFA (Graphical Fragment Assembly) interchange: the standard text format
// the VG toolkit consumes and produces for variation graphs. This
// reproduction emits GFA 1.1 with S (segment), L (link), and P (path)
// records — enough to round-trip its graphs and to inspect them with
// standard pangenomics tooling.

// WriteGFA serialises g as GFA 1.1.
func (g *Graph) WriteGFA(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "H\tVN:Z:1.1"); err != nil {
		return err
	}
	for id := NodeID(1); int(id) <= g.NumNodes(); id++ {
		if _, err := fmt.Fprintf(bw, "S\t%d\t%s\n", id, g.Seq(id).String()); err != nil {
			return err
		}
	}
	for id := NodeID(1); int(id) <= g.NumNodes(); id++ {
		for _, to := range g.Successors(id) {
			if _, err := fmt.Fprintf(bw, "L\t%d\t+\t%d\t+\t0M\n", id, to); err != nil {
				return err
			}
		}
	}
	for i := 0; i < g.NumPaths(); i++ {
		steps := make([]string, len(g.Path(i)))
		for j, v := range g.Path(i) {
			steps[j] = fmt.Sprintf("%d+", v)
		}
		if _, err := fmt.Fprintf(bw, "P\thap%d\t%s\t*\n", i, strings.Join(steps, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGFA parses a GFA 1.x stream into a Graph. Segments must use numeric
// 1..N identifiers in order (the layout this package writes); reverse-strand
// links and paths are rejected, as this reproduction's graphs are
// forward-only DAGs.
func ReadGFA(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := &Graph{}
	type pendingEdge struct{ from, to NodeID }
	var edges []pendingEdge
	var paths [][]NodeID
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "H":
			// header: ignored
		case "S":
			if len(fields) < 3 {
				return nil, fmt.Errorf("vgraph: GFA line %d: short S record", lineNo)
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("vgraph: GFA line %d: segment id %q: %w", lineNo, fields[1], err)
			}
			seq, err := dna.Parse(fields[2])
			if err != nil {
				return nil, fmt.Errorf("vgraph: GFA line %d: %w", lineNo, err)
			}
			got, err := g.AddNode(seq)
			if err != nil {
				return nil, fmt.Errorf("vgraph: GFA line %d: %w", lineNo, err)
			}
			if got != NodeID(id) {
				return nil, fmt.Errorf("vgraph: GFA line %d: segment ids must be sequential (got %d, expected %d)", lineNo, id, got)
			}
		case "L":
			if len(fields) < 5 {
				return nil, fmt.Errorf("vgraph: GFA line %d: short L record", lineNo)
			}
			if fields[2] != "+" || fields[4] != "+" {
				return nil, fmt.Errorf("vgraph: GFA line %d: reverse-strand links unsupported", lineNo)
			}
			from, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("vgraph: GFA line %d: %w", lineNo, err)
			}
			to, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("vgraph: GFA line %d: %w", lineNo, err)
			}
			edges = append(edges, pendingEdge{NodeID(from), NodeID(to)})
		case "P":
			if len(fields) < 3 {
				return nil, fmt.Errorf("vgraph: GFA line %d: short P record", lineNo)
			}
			var path []NodeID
			for _, step := range strings.Split(fields[2], ",") {
				if step == "" {
					continue
				}
				strand := step[len(step)-1]
				if strand == '-' {
					return nil, fmt.Errorf("vgraph: GFA line %d: reverse path steps unsupported", lineNo)
				}
				idStr := step
				if strand == '+' {
					idStr = step[:len(step)-1]
				}
				id, err := strconv.ParseUint(idStr, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("vgraph: GFA line %d: path step %q: %w", lineNo, step, err)
				}
				path = append(path, NodeID(id))
			}
			paths = append(paths, path)
		default:
			// Other record types (C, W, ...) are skipped.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range edges {
		if err := g.AddEdge(e.from, e.to); err != nil {
			return nil, err
		}
	}
	for _, p := range paths {
		if _, err := g.AddPath(p); err != nil {
			return nil, err
		}
	}
	return g, nil
}
