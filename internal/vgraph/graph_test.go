package vgraph

import (
	"testing"

	"repro/internal/dna"
)

func mustNode(t *testing.T, g *Graph, s string) NodeID {
	t.Helper()
	id, err := g.AddNode(dna.MustParse(s))
	if err != nil {
		t.Fatalf("AddNode(%q): %v", s, err)
	}
	return id
}

func TestAddNodeEmptyLabel(t *testing.T) {
	var g Graph
	if _, err := g.AddNode(nil); err == nil {
		t.Error("AddNode(empty): want error")
	}
}

func TestAddEdgeAndQueries(t *testing.T) {
	var g Graph
	a := mustNode(t, &g, "ACGT")
	b := mustNode(t, &g, "GG")
	c := mustNode(t, &g, "T")
	for _, e := range []Edge{{a, b}, {a, c}, {b, c}} {
		if err := g.AddEdge(e.From, e.To); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(a, c) || !g.HasEdge(b, c) {
		t.Error("missing edges")
	}
	if g.HasEdge(b, a) {
		t.Error("phantom reverse edge")
	}
	if got := g.Successors(a); len(got) != 2 || got[0] != b || got[1] != c {
		t.Errorf("Successors(a) = %v", got)
	}
	if got := g.Predecessors(c); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Predecessors(c) = %v", got)
	}
	// Duplicate edges ignored.
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("duplicate AddEdge: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("duplicate edge changed count to %d", g.NumEdges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	var g Graph
	a := mustNode(t, &g, "A")
	if err := g.AddEdge(a, 99); err == nil {
		t.Error("edge to missing node: want error")
	}
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop: want error")
	}
}

func TestTopoOrder(t *testing.T) {
	var g Graph
	a := mustNode(t, &g, "A")
	b := mustNode(t, &g, "C")
	c := mustNode(t, &g, "G")
	d := mustNode(t, &g, "T")
	for _, e := range []Edge{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range []Edge{{a, b}, {a, c}, {b, d}, {c, d}} {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("topo violation: %d before %d", e.To, e.From)
		}
	}
}

func TestPaths(t *testing.T) {
	var g Graph
	a := mustNode(t, &g, "AC")
	b := mustNode(t, &g, "GT")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	idx, err := g.AddPath([]NodeID{a, b})
	if err != nil {
		t.Fatalf("AddPath: %v", err)
	}
	if got := g.PathSeq(idx).String(); got != "ACGT" {
		t.Errorf("PathSeq = %q, want ACGT", got)
	}
	if _, err := g.AddPath([]NodeID{b, a}); err == nil {
		t.Error("broken path accepted")
	}
	if _, err := g.AddPath(nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestValidate(t *testing.T) {
	var g Graph
	a := mustNode(t, &g, "A")
	b := mustNode(t, &g, "C")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate on valid graph: %v", err)
	}
}

func TestPositionString(t *testing.T) {
	fwd := Position{Node: 17, Off: 3}
	if fwd.String() != "17+:3" {
		t.Errorf("got %q", fwd.String())
	}
	rev := Position{Node: 17, Off: 3, Rev: true}
	if rev.String() != "17-:3" {
		t.Errorf("got %q", rev.String())
	}
}

func TestBackbone(t *testing.T) {
	var g Graph
	a := mustNode(t, &g, "ACGT")
	if g.Backbone(a) != -1 {
		t.Errorf("default backbone = %d, want -1", g.Backbone(a))
	}
	g.SetBackbone(a, 42)
	if g.Backbone(a) != 42 {
		t.Errorf("backbone = %d, want 42", g.Backbone(a))
	}
}
