package machine

import (
	"errors"
	"testing"
)

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name)
		if err != nil || got.Name != m.Name {
			t.Errorf("ByName(%q) = %v, %v", m.Name, got.Name, err)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestTableIIShapes(t *testing.T) {
	// The thread counts used in the paper's autotuning study.
	want := map[string]int{
		"local-intel": 96, "local-amd": 128, "chi-arm": 64, "chi-intel": 160,
	}
	for _, m := range All() {
		if got := m.MaxThreads(); got != want[m.Name] {
			t.Errorf("%s MaxThreads = %d, want %d", m.Name, got, want[m.Name])
		}
	}
	if LocalAMD.L3TotalMB() != 256 {
		t.Errorf("local-amd L3 = %f", LocalAMD.L3TotalMB())
	}
	if LocalIntel.L3TotalMB() != 71.5 {
		t.Errorf("local-intel L3 = %f", LocalIntel.L3TotalMB())
	}
}

func TestHWSpeedupMonotoneNondecreasing(t *testing.T) {
	for _, m := range All() {
		prev := 0.0
		for th := 1; th <= m.MaxThreads(); th++ {
			s := m.HWSpeedup(th)
			if s < prev {
				t.Fatalf("%s: speedup decreases at %d threads", m.Name, th)
			}
			prev = s
		}
		// Beyond hardware threads: no further gain.
		if m.HWSpeedup(m.MaxThreads()+32) != m.HWSpeedup(m.MaxThreads()) {
			t.Errorf("%s: speedup grows past hardware threads", m.Name)
		}
	}
}

func TestHWSpeedupLinearOnFirstSocket(t *testing.T) {
	for _, m := range All() {
		for th := 1; th <= m.CoresPerSocket; th++ {
			if got := m.HWSpeedup(th); got != float64(th) {
				t.Fatalf("%s: speedup(%d) = %f, want linear", m.Name, th, got)
			}
		}
	}
}

func TestSMTPlateauOnIntel(t *testing.T) {
	// Past all physical cores, the marginal gain per hyperthread must be
	// small on the Intel machines (the paper's plateau) and larger on AMD.
	gain := func(m Machine) float64 {
		return m.HWSpeedup(m.MaxThreads()) - m.HWSpeedup(m.TotalCores())
	}
	perHT := func(m Machine) float64 {
		return gain(m) / float64(m.MaxThreads()-m.TotalCores())
	}
	if perHT(LocalIntel) >= perHT(LocalAMD) {
		t.Errorf("Intel SMT gain %.3f not below AMD %.3f", perHT(LocalIntel), perHT(LocalAMD))
	}
}

func TestChiArmNoSMT(t *testing.T) {
	if ChiARM.MaxThreads() != ChiARM.TotalCores() {
		t.Error("chi-arm should have one thread per core")
	}
}

func testWorkload() Workload {
	return Workload{SerialRefSec: 200, Reads: 100000, WorkingSetMB: 100, MemGB: 32}
}

func TestSimTimeDecreasesWithThreads(t *testing.T) {
	for _, m := range All() {
		w := testWorkload()
		t1, err := m.SimTime(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		t32, err := m.SimTime(w, 32)
		if err != nil {
			t.Fatal(err)
		}
		if t32 >= t1 {
			t.Errorf("%s: 32 threads (%f) not faster than 1 (%f)", m.Name, t32, t1)
		}
	}
}

func TestSimTimeOOM(t *testing.T) {
	w := testWorkload()
	w.MemGB = 300 // D-HPRC-like requirement
	for _, m := range []Machine{ChiARM, ChiIntel} {
		if _, err := m.SimTime(w, 8); !errors.Is(err, ErrOutOfMemory) {
			t.Errorf("%s: want ErrOutOfMemory, got %v", m.Name, err)
		}
	}
	for _, m := range []Machine{LocalIntel, LocalAMD} {
		if _, err := m.SimTime(w, 8); err != nil {
			t.Errorf("%s: 768 GB box rejected 300 GB workload: %v", m.Name, err)
		}
	}
}

func TestSimTimeInvalidArgs(t *testing.T) {
	if _, err := LocalIntel.SimTime(testWorkload(), 0); err == nil {
		t.Error("0 threads accepted")
	}
	w := testWorkload()
	w.SerialRefSec = -1
	if _, err := LocalIntel.SimTime(w, 1); err == nil {
		t.Error("negative serial time accepted")
	}
}

func TestSmallInputPlateaus(t *testing.T) {
	// A small input (A-human-like) must plateau: using every hardware
	// thread is not meaningfully better than using half of them, and the
	// speedup stays well below the large-input speedup.
	small := Workload{SerialRefSec: 20, Reads: 1500, WorkingSetMB: 50, MemGB: 8}
	big := Workload{SerialRefSec: 2000, Reads: 150000, WorkingSetMB: 50, MemGB: 8}
	m := ChiARM
	sSmall, err := m.Speedup(small, m.MaxThreads())
	if err != nil {
		t.Fatal(err)
	}
	sBig, err := m.Speedup(big, m.MaxThreads())
	if err != nil {
		t.Fatal(err)
	}
	if sSmall >= sBig {
		t.Errorf("small input speedup %f not below large input %f", sSmall, sBig)
	}
}

func TestAbsoluteRankingMatchesTableVII(t *testing.T) {
	// At each machine's full thread count, local-amd must be fastest and
	// chi-arm slowest — the paper's Table VII ranking.
	w := Workload{SerialRefSec: 500, Reads: 50000, WorkingSetMB: 150, MemGB: 16}
	times := map[string]float64{}
	for _, m := range All() {
		tm, err := m.SimTime(w, m.MaxThreads())
		if err != nil {
			t.Fatal(err)
		}
		times[m.Name] = tm
	}
	if !(times["local-amd"] < times["chi-intel"] &&
		times["local-amd"] < times["local-intel"] &&
		times["local-intel"] < times["chi-arm"]) {
		t.Errorf("ranking wrong: %v", times)
	}
}

func TestCacheFactorRanking(t *testing.T) {
	// A working set over most machines' L3 must penalise small-L3 machines
	// more than local-amd (256 MB).
	small := LocalIntel.cacheFactor(200)
	amd := LocalAMD.cacheFactor(200)
	if amd != 1 {
		t.Errorf("200 MB should fit local-amd L3: factor %f", amd)
	}
	if small <= 1 {
		t.Errorf("200 MB must not fit local-intel L3: factor %f", small)
	}
}

func TestSpeedupAtOneIsOne(t *testing.T) {
	for _, m := range All() {
		s, err := m.Speedup(testWorkload(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if s != 1 {
			t.Errorf("%s: speedup(1) = %f", m.Name, s)
		}
	}
}
