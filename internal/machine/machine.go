// Package machine models the four evaluation platforms of the miniGiraffe
// paper (Table II) — local-intel, local-amd, chi-arm, chi-intel — and the
// analytic scaling model used to project locally measured kernel work onto
// them. The paper ran the proxy natively on all four servers; this
// reproduction substitutes parameterised models (cores, SMT, sockets,
// frequency, last-level cache, per-core throughput) applied to real local
// measurements, preserving the cross-system *shapes*: near-linear scaling on
// local-amd and chi-arm, socket/SMT plateaus on the Intel boxes, absolute
// ranking driven by per-core speed and L3 capacity, and the 256 GB machines
// running out of memory on input set D (§VII-A, Fig. 5, Table VII).
package machine

import (
	"fmt"
	"math"
)

// Machine describes one evaluation platform.
type Machine struct {
	Name           string
	Vendor         string
	Processor      string
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	FreqGHz        float64
	L3PerSocketMB  float64
	L2PerCoreKB    int
	DRAMGB         int

	// Model parameters (calibrated to the paper's shapes).

	// CoreSpeed is per-core throughput relative to a local-intel core.
	CoreSpeed float64
	// CrossSocketEff discounts cores on the second socket (NUMA traffic).
	CrossSocketEff float64
	// SMTEff is the marginal throughput of a second hardware thread.
	SMTEff float64
	// PerThreadOverheadSec models scheduler startup/teardown per thread;
	// it is what makes small inputs plateau and then slow down.
	PerThreadOverheadSec float64
	// CachePenalty scales the slowdown when the working set exceeds the
	// total L3.
	CachePenalty float64
}

// The four platforms of Table II.
var (
	LocalIntel = Machine{
		Name: "local-intel", Vendor: "Intel", Processor: "Xeon 8260",
		Sockets: 2, CoresPerSocket: 24, ThreadsPerCore: 2,
		FreqGHz: 2.4, L3PerSocketMB: 35.75, L2PerCoreKB: 1024, DRAMGB: 768,
		CoreSpeed: 1.00, CrossSocketEff: 0.70, SMTEff: 0.12,
		PerThreadOverheadSec: 5e-5, CachePenalty: 0.65,
	}
	LocalAMD = Machine{
		Name: "local-amd", Vendor: "AMD", Processor: "EPYC 9554",
		Sockets: 1, CoresPerSocket: 64, ThreadsPerCore: 2,
		FreqGHz: 3.1, L3PerSocketMB: 256, L2PerCoreKB: 1024, DRAMGB: 768,
		CoreSpeed: 1.60, CrossSocketEff: 1.0, SMTEff: 0.42,
		PerThreadOverheadSec: 2e-5, CachePenalty: 0.25,
	}
	ChiARM = Machine{
		Name: "chi-arm", Vendor: "Cavium", Processor: "ThunderX2 99xx",
		Sockets: 2, CoresPerSocket: 32, ThreadsPerCore: 1,
		FreqGHz: 2.5, L3PerSocketMB: 64, L2PerCoreKB: 256, DRAMGB: 256,
		CoreSpeed: 0.60, CrossSocketEff: 0.92, SMTEff: 0,
		PerThreadOverheadSec: 8e-5, CachePenalty: 0.55,
	}
	ChiIntel = Machine{
		Name: "chi-intel", Vendor: "Intel", Processor: "Xeon 8380",
		Sockets: 2, CoresPerSocket: 40, ThreadsPerCore: 2,
		FreqGHz: 2.3, L3PerSocketMB: 60, L2PerCoreKB: 1280, DRAMGB: 256,
		CoreSpeed: 1.08, CrossSocketEff: 0.72, SMTEff: 0.15,
		PerThreadOverheadSec: 5e-5, CachePenalty: 0.50,
	}
)

// All returns the four platforms in the paper's order.
func All() []Machine { return []Machine{LocalIntel, LocalAMD, ChiARM, ChiIntel} }

// ByName finds a platform by name.
func ByName(name string) (Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("machine: unknown platform %q", name)
}

// TotalCores returns the physical core count.
func (m Machine) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// MaxThreads returns the hardware thread count — the thread counts the
// autotuning study uses (96, 128, 64, 160).
func (m Machine) MaxThreads() int { return m.TotalCores() * m.ThreadsPerCore }

// L3TotalMB returns the machine-wide last-level cache capacity.
func (m Machine) L3TotalMB() float64 { return m.L3PerSocketMB * float64(m.Sockets) }

// CanHold reports whether a workload needing memGB fits in DRAM.
func (m Machine) CanHold(memGB float64) bool { return memGB <= float64(m.DRAMGB) }

// HWSpeedup returns the hardware-limited speedup at the given thread count:
// linear on the first socket, discounted on the second, marginal for SMT
// contexts.
func (m Machine) HWSpeedup(threads int) float64 {
	if threads < 1 {
		return 0
	}
	if threads > m.MaxThreads() {
		threads = m.MaxThreads()
	}
	cps := m.CoresPerSocket
	total := m.TotalCores()
	t1 := math.Min(float64(threads), float64(cps))
	t2 := math.Max(0, math.Min(float64(threads-cps), float64(total-cps)))
	t3 := math.Max(0, float64(threads-total))
	return t1 + m.CrossSocketEff*t2 + m.SMTEff*t3
}

// Workload summarises what the scaling model needs about a run: the measured
// single-thread reference time (on a local-intel-speed core), the number of
// parallel items (reads), the working-set footprint, and the memory
// requirement. Batch-size effects reach the model through the locally
// measured reference time (per-batch cache rebuilds are real work), not as a
// separate parameter.
type Workload struct {
	SerialRefSec float64
	Reads        int
	WorkingSetMB float64
	MemGB        float64
}

// ErrOutOfMemory is returned by SimTime for workloads exceeding DRAM.
var ErrOutOfMemory = fmt.Errorf("machine: workload exceeds DRAM")

// MinReadsPerThread is the read count below which an extra thread stops
// paying off; it calibrates the small-input plateau (A-human flattens near
// 35-40 threads at its 1500-read scale, as in the paper's Figures 4-5).
const MinReadsPerThread = 40

// SimTime projects the workload's makespan (seconds) at the given thread
// count: serial time scaled by per-core speed and the cache penalty, divided
// by the effective speedup (hardware curve capped by batch-granularity
// parallelism), plus per-thread overhead.
func (m Machine) SimTime(w Workload, threads int) (float64, error) {
	if !m.CanHold(w.MemGB) {
		return 0, fmt.Errorf("%w: need %.0f GB, have %d GB on %s", ErrOutOfMemory, w.MemGB, m.DRAMGB, m.Name)
	}
	if threads < 1 || w.SerialRefSec < 0 {
		return 0, fmt.Errorf("machine: invalid threads %d or serial time %f", threads, w.SerialRefSec)
	}
	serial := w.SerialRefSec / m.CoreSpeed * m.cacheFactor(w.WorkingSetMB)
	s := m.HWSpeedup(threads)
	// Input granularity caps parallelism: "the scalability of the
	// application is directly linked to the number of short reads each
	// thread will be responsible for mapping" (§VII-A) — small inputs
	// plateau once threads have too few reads each.
	if w.Reads > 0 {
		maxPar := float64(w.Reads) / MinReadsPerThread
		if maxPar < 1 {
			maxPar = 1
		}
		if s > maxPar {
			s = maxPar
		}
	}
	if s < 1 {
		s = 1
	}
	return serial/s + m.PerThreadOverheadSec*float64(threads), nil
}

// cacheFactor returns the slowdown multiplier for a working set relative to
// the machine's L3: 1 when it fits, growing with the miss fraction when it
// does not.
func (m Machine) cacheFactor(wsMB float64) float64 {
	l3 := m.L3TotalMB()
	if wsMB <= l3 || wsMB <= 0 {
		return 1
	}
	missFrac := 1 - l3/wsMB
	return 1 + m.CachePenalty*missFrac
}

// Speedup returns SimTime(1 thread)/SimTime(threads) — the Figure 5 series.
func (m Machine) Speedup(w Workload, threads int) (float64, error) {
	t1, err := m.SimTime(w, 1)
	if err != nil {
		return 0, err
	}
	tn, err := m.SimTime(w, threads)
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return 0, fmt.Errorf("machine: degenerate simulated time")
	}
	return t1 / tn, nil
}
