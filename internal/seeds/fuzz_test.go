package seeds

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/dna"
	"repro/internal/vgraph"
)

// fuzzRecords is a small workload with every field exercised: paired names,
// reverse seeds, an empty seed list, and a non-trivial sequence.
func fuzzRecords() []ReadSeeds {
	return []ReadSeeds{
		{
			Read: dna.Read{Name: "r0/1", Seq: dna.MustParse("ACGTACGTACGTA"), Fragment: 0, End: 0},
			Seeds: []Seed{
				{Pos: vgraph.Position{Node: 5, Off: 3}, ReadOff: 2, Rev: true, Score: 1.5},
				{Pos: vgraph.Position{Node: 9, Off: 0}, ReadOff: 7, Score: -2},
			},
		},
		{
			Read: dna.Read{Name: "r0/2", Seq: dna.MustParse("TTTT"), Fragment: 0, End: 1},
		},
		{
			Read:  dna.Read{Name: "solo", Seq: dna.MustParse("G"), Fragment: -1},
			Seeds: []Seed{{Pos: vgraph.Position{Node: 1, Off: 1}, ReadOff: 0, Score: 0.25}},
		},
	}
}

func serializeV1(t testing.TB, recs []ReadSeeds) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, len(recs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadSeeds throws arbitrary bytes at the capture-file reader. The
// reader must reject corrupt input with an error — truncations, bad
// varints, implausible counts, garbage headers — and must never panic.
// When a full parse succeeds, serialising the records must be stable:
// write -> read -> write yields identical bytes.
//
// The Remaining() contract is checked on every input that opens: a v1
// reader starts at its declared count and decrements by exactly one per
// record; a v2 stream answers -1 until the footer is reached; both answer 0
// once Next has returned io.EOF.
func FuzzReadSeeds(f *testing.F) {
	recs := fuzzRecords()
	v1 := serializeV1(f, recs)
	serializeV2 := func(t testing.TB, recs []ReadSeeds) []byte {
		t.Helper()
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if err := sw.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	v2 := serializeV2(f, recs)

	f.Add(v1)
	f.Add(v2)
	f.Add(v1[:len(v1)/2])           // truncated mid-record
	f.Add(v2[:len(v2)-4])           // v2 with a clipped footer
	f.Add([]byte{})                 // empty
	f.Add([]byte("MGSB"))           // magic only
	f.Add([]byte("not a bin file")) // bad magic
	badVarint := append(append([]byte{}, v1[:16]...), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)
	f.Add(badVarint) // name length varint overflows
	f.Add(serializeV1(f, nil))
	f.Add(serializeV2(f, nil)) // both formats with zero records
	overcount := append([]byte(nil), v1...)
	overcount[8]++ // v1 header claims one more record than the file holds
	f.Add(overcount)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		rem := r.Remaining()
		if rem < -1 {
			t.Fatalf("Remaining() = %d just after open; contract is a declared count ≥ 0 (v1) or -1 (v2 stream)", rem)
		}
		stream := rem == -1
		var parsed []ReadSeeds
		for {
			before := r.Remaining()
			rec, err := r.Next()
			if err == io.EOF {
				if got := r.Remaining(); got != 0 {
					t.Fatalf("Remaining() = %d after io.EOF, want 0", got)
				}
				break
			}
			if err != nil {
				return
			}
			switch after := r.Remaining(); {
			case stream && after != -1:
				t.Fatalf("stream Remaining() = %d mid-iteration, want -1 until the footer", after)
			case !stream && after != before-1:
				t.Fatalf("Remaining() went %d -> %d across one Next, want a decrement of exactly 1", before, after)
			}
			parsed = append(parsed, *rec)
		}
		first := serializeV1(t, parsed)
		r2, err := NewReader(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("reparsing canonical serialisation: %v", err)
		}
		var again []ReadSeeds
		for {
			rec, err := r2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("reparsing canonical serialisation: %v", err)
			}
			again = append(again, *rec)
		}
		second := serializeV1(t, again)
		if !bytes.Equal(first, second) {
			t.Fatal("serialisation is not stable across a write/read cycle")
		}
	})
}
