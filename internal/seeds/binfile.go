package seeds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/dna"
	"repro/internal/vgraph"
)

// Binary capture format ("sequence-seeds.bin"), the proxy's main input.
//
//	magic "MGSB" (4 bytes), version uint16 LE, reserved uint16
//	count uint64 LE
//	per record (varints unless noted):
//	    nameLen, name bytes
//	    fragment+1 (0 = single-end), end
//	    seqLen, packed 2-bit bases
//	    numSeeds
//	    per seed: node, off, readOff, flags (bit0 = rev), score float32 LE
//
// Version 2 is the streaming variant for capture paths that do not know the
// record count up front (e.g. an emulator capturing while it maps): the
// header count field is written as zero and ignored, records stream as in
// version 1, and the file ends with a footer — the sentinel value 2^64-1
// where the next record's nameLen varint would be, followed by the actual
// record count as uint64 LE so readers can verify the stream is complete.
var (
	binMagic   = [4]byte{'M', 'G', 'S', 'B'}
	binVersion = uint16(1)
	// binVersionStream marks the count-free footer variant.
	binVersionStream = uint16(2)
	// streamEndSentinel terminates a version-2 record stream. It can never
	// begin a real record: name lengths are capped far below it.
	streamEndSentinel = ^uint64(0)
)

// Errors reported by the reader.
var (
	ErrBadMagic   = errors.New("seeds: bad magic")
	ErrBadVersion = errors.New("seeds: unsupported version")
)

// Writer streams ReadSeeds records to an output.
type Writer struct {
	bw      *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	n       uint64
	counted uint64
	stream  bool
	err     error
}

// NewWriter writes the header for `count` records and returns the streaming
// writer.
func NewWriter(w io.Writer, count int) (*Writer, error) {
	return newWriter(w, binVersion, uint64(count))
}

// NewStreamWriter returns a version-2 writer that does not need the record
// count up front: records are appended until Close, which writes the
// end-of-stream footer carrying the actual count. Use it on capture paths
// that produce records incrementally.
func NewStreamWriter(w io.Writer) (*Writer, error) {
	return newWriter(w, binVersionStream, 0)
}

func newWriter(w io.Writer, version uint16, count uint64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, n: count, stream: version == binVersionStream}, nil
}

func (w *Writer) put(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.scratch[:], v)
	_, w.err = w.bw.Write(w.scratch[:n])
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.bw.Write(b)
}

// Write appends one record.
func (w *Writer) Write(rs *ReadSeeds) error {
	if w.err != nil {
		return w.err
	}
	if !w.stream && w.counted >= w.n {
		w.err = fmt.Errorf("seeds: writing more than the declared %d records", w.n)
		return w.err
	}
	w.counted++
	w.put(uint64(len(rs.Read.Name)))
	w.write([]byte(rs.Read.Name))
	w.put(uint64(rs.Read.Fragment + 1))
	w.put(uint64(rs.Read.End))
	packed := dna.Pack(rs.Read.Seq)
	data, n := packed.Raw()
	w.put(uint64(n))
	w.write(data)
	w.put(uint64(len(rs.Seeds)))
	for _, s := range rs.Seeds {
		w.put(uint64(s.Pos.Node))
		w.put(uint64(s.Pos.Off))
		w.put(uint64(s.ReadOff))
		flags := uint64(0)
		if s.Rev {
			flags = 1
		}
		w.put(flags)
		var f [4]byte
		binary.LittleEndian.PutUint32(f[:], math.Float32bits(s.Score))
		w.write(f[:])
	}
	return w.err
}

// Close flushes the stream. Count-up-front writers verify the declared
// record count; stream writers append the end-of-stream footer instead.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.stream {
		w.put(streamEndSentinel)
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], w.counted)
		w.write(cnt[:])
		if w.err != nil {
			return w.err
		}
	} else if w.counted != w.n {
		return fmt.Errorf("seeds: wrote %d of %d declared records", w.counted, w.n)
	}
	return w.bw.Flush()
}

// Reader streams ReadSeeds records from an input. It accepts both the
// count-up-front version 1 and the footer-terminated streaming version 2.
type Reader struct {
	br        *bufio.Reader
	remaining uint64
	stream    bool // version 2: remaining is unknown until the footer
	done      bool
	read      uint64
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("seeds: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, ErrBadMagic
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("seeds: reading header: %w", err)
	}
	switch v := binary.LittleEndian.Uint16(hdr[0:]); v {
	case binVersion:
		// The declared count feeds Remaining()'s int result; a count no real
		// capture can hold (each record is several bytes) is corruption, and
		// letting it through would overflow Remaining negative.
		count := binary.LittleEndian.Uint64(hdr[4:])
		if count > 1<<56 {
			return nil, fmt.Errorf("seeds: implausible record count %d", count)
		}
		return &Reader{br: br, remaining: count}, nil
	case binVersionStream:
		return &Reader{br: br, stream: true}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
}

// Remaining returns how many records are left, or -1 when the stream is a
// version-2 capture whose count is only known once the footer is reached.
func (r *Reader) Remaining() int {
	if r.stream {
		if r.done {
			return 0
		}
		return -1
	}
	return int(r.remaining)
}

// noCleanEOF converts a clean io.EOF into io.ErrUnexpectedEOF: inside a
// record, running out of bytes is a truncation, not an end of stream.
func noCleanEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next reads the next record, or io.EOF after the last one.
func (r *Reader) Next() (*ReadSeeds, error) {
	if r.done || (!r.stream && r.remaining == 0) {
		return nil, io.EOF
	}
	if !r.stream {
		r.remaining--
	}
	get := func() (uint64, error) { return binary.ReadUvarint(r.br) }
	nameLen, err := get()
	if err != nil {
		return nil, fmt.Errorf("seeds: name length: %w", err)
	}
	if r.stream && nameLen == streamEndSentinel {
		// End-of-stream footer: verify the trailing count.
		var cnt [8]byte
		if _, err := io.ReadFull(r.br, cnt[:]); err != nil {
			return nil, fmt.Errorf("seeds: stream footer: %w", err)
		}
		if n := binary.LittleEndian.Uint64(cnt[:]); n != r.read {
			return nil, fmt.Errorf("seeds: stream footer declares %d records, read %d", n, r.read)
		}
		r.done = true
		return nil, io.EOF
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("seeds: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return nil, fmt.Errorf("seeds: name: %w", err)
	}
	// From here on the record has started: a clean EOF from the underlying
	// reader is a truncation, and must surface as an error — never as the
	// bare io.EOF that callers read as a complete stream (and that would
	// leave a v2 Reader's Remaining() stuck at -1).
	fragP1, err := get()
	if err != nil {
		return nil, fmt.Errorf("seeds: fragment: %w", noCleanEOF(err))
	}
	end, err := get()
	if err != nil {
		return nil, fmt.Errorf("seeds: end: %w", noCleanEOF(err))
	}
	seqLen, err := get()
	if err != nil {
		return nil, fmt.Errorf("seeds: read length: %w", noCleanEOF(err))
	}
	if seqLen > 1<<20 {
		return nil, fmt.Errorf("seeds: implausible read length %d", seqLen)
	}
	data := make([]byte, (seqLen+3)/4)
	if _, err := io.ReadFull(r.br, data); err != nil {
		return nil, fmt.Errorf("seeds: bases: %w", err)
	}
	packed, err := dna.PackedFromRaw(data, int(seqLen))
	if err != nil {
		return nil, err
	}
	nSeeds, err := get()
	if err != nil {
		return nil, fmt.Errorf("seeds: seed count: %w", noCleanEOF(err))
	}
	if nSeeds > 1<<24 {
		return nil, fmt.Errorf("seeds: implausible seed count %d", nSeeds)
	}
	// Preallocate from the declared count only up to a modest bound: a
	// corrupt or hostile count must not translate into a huge allocation
	// before any seed bytes have been read.
	capHint := nSeeds
	if capHint > 4096 {
		capHint = 4096
	}
	rs := &ReadSeeds{
		Read: dna.Read{
			Name:     string(name),
			Seq:      packed.Unpack(),
			Fragment: int(fragP1) - 1,
			End:      int(end),
		},
		Seeds: make([]Seed, 0, capHint),
	}
	for i := 0; i < int(nSeeds); i++ {
		node, err := get()
		if err != nil {
			return nil, fmt.Errorf("seeds: seed %d node: %w", i, noCleanEOF(err))
		}
		off, err := get()
		if err != nil {
			return nil, fmt.Errorf("seeds: seed %d offset: %w", i, noCleanEOF(err))
		}
		readOff, err := get()
		if err != nil {
			return nil, fmt.Errorf("seeds: seed %d read offset: %w", i, noCleanEOF(err))
		}
		flags, err := get()
		if err != nil {
			return nil, fmt.Errorf("seeds: seed %d flags: %w", i, noCleanEOF(err))
		}
		var f [4]byte
		if _, err := io.ReadFull(r.br, f[:]); err != nil {
			return nil, fmt.Errorf("seeds: seed %d score: %w", i, err)
		}
		rs.Seeds = append(rs.Seeds, Seed{
			Pos:     vgraph.Position{Node: vgraph.NodeID(node), Off: int32(off)},
			ReadOff: int32(readOff),
			Rev:     flags&1 != 0,
			Score:   math.Float32frombits(binary.LittleEndian.Uint32(f[:])),
		})
	}
	r.read++
	return rs, nil
}

// WriteFile saves all records to a file at path.
func WriteFile(path string, records []ReadSeeds) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := NewWriter(out, len(records))
	if err != nil {
		out.Close()
		return err
	}
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			out.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// File is a ReadSeeds stream backed by an open file: the incremental input
// the streaming pipeline consumes record by record, so the workload is never
// materialized in memory. Close it when done.
type File struct {
	*Reader
	f *os.File
}

// Open validates the header of the capture file at path and returns the
// incremental reader over its records.
func Open(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(in)
	if err != nil {
		in.Close()
		return nil, err
	}
	return &File{Reader: r, f: in}, nil
}

// Close releases the underlying file.
func (f *File) Close() error { return f.f.Close() }

// ReadFile loads all records from a file at path.
func ReadFile(path string) ([]ReadSeeds, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	r, err := NewReader(in)
	if err != nil {
		return nil, err
	}
	// The v1 header count is untrusted input — use it as a capacity hint
	// only within a modest bound.
	capHint := r.Remaining()
	if capHint < 0 {
		capHint = 0
	} else if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]ReadSeeds, 0, capHint)
	for {
		rs, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, *rs)
	}
	return out, nil
}
