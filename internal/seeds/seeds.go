// Package seeds defines the seed records that connect Giraffe's
// preprocessing to the seed-and-extend kernels, and the binary capture
// format ("sequence-seeds.bin") that miniGiraffe consumes as input: the
// paper's proxy takes the reads plus their preprocessed seeds, captured from
// Giraffe right before the critical functions execute (§V).
package seeds

import (
	"repro/internal/dna"
	"repro/internal/minimizer"
	"repro/internal/vgraph"
)

// Seed anchors a read offset to a graph position: a minimizer shared between
// the read and the pangenome, i.e. where a mapping walk can start.
type Seed struct {
	// Pos is the graph position of the seed k-mer's first base, on the
	// graph's forward strand.
	Pos vgraph.Position
	// ReadOff is the k-mer's offset in the *oriented* read: the read as
	// sequenced when Rev is false, its reverse complement when Rev is true.
	ReadOff int32
	// Rev is true when the read matches the graph on the reverse strand.
	Rev bool
	// Score is the minimizer's frequency-weighted seeding score.
	Score float32
}

// ReadSeeds bundles one read with its seeds — one record of the proxy's
// captured input.
type ReadSeeds struct {
	Read  dna.Read
	Seeds []Seed
}

// Extract computes the seeds of a read against a minimizer index, performing
// the orientation normalisation: a hit whose canonical orientation differs
// between read and graph anchors the reverse-complemented read.
func Extract(ix *minimizer.Index, read *dna.Read) ([]Seed, error) {
	rms, err := ix.LookupRead(read.Seq)
	if err != nil {
		return nil, err
	}
	k := int32(ix.Config().K)
	n := int32(len(read.Seq))
	var out []Seed
	for _, rm := range rms {
		for _, occ := range rm.Occs {
			rev := rm.Min.Rev != occ.Rev
			readOff := rm.Min.Off
			if rev {
				// The k-mer's first base in the reverse-complemented read.
				readOff = n - k - rm.Min.Off
			}
			out = append(out, Seed{
				Pos:     occ.Pos,
				ReadOff: readOff,
				Rev:     rev,
				Score:   float32(rm.Score),
			})
		}
	}
	return out, nil
}
