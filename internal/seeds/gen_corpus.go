//go:build ignore

// Regenerates the checked-in fuzz corpus for FuzzReadSeeds. The corpus
// seeds the fuzzer with both capture-format versions plus the interesting
// corruption classes (truncation, clipped footer, varint overflow, bad
// magic). Run from the repository root:
//
//	go run internal/seeds/gen_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dna"
	"repro/internal/seeds"
	"repro/internal/vgraph"
)

func main() {
	recs := []seeds.ReadSeeds{
		{
			Read: dna.Read{Name: "r0/1", Seq: dna.MustParse("ACGTACGTACGTA"), Fragment: 0, End: 0},
			Seeds: []seeds.Seed{
				{Pos: vgraph.Position{Node: 5, Off: 3}, ReadOff: 2, Rev: true, Score: 1.5},
				{Pos: vgraph.Position{Node: 9, Off: 0}, ReadOff: 7, Score: -2},
			},
		},
		{
			Read: dna.Read{Name: "r0/2", Seq: dna.MustParse("TTTT"), Fragment: 0, End: 1},
		},
		{
			Read:  dna.Read{Name: "solo", Seq: dna.MustParse("G"), Fragment: -1},
			Seeds: []seeds.Seed{{Pos: vgraph.Position{Node: 1, Off: 1}, ReadOff: 0, Score: 0.25}},
		},
	}

	var v1 bytes.Buffer
	w, err := seeds.NewWriter(&v1, len(recs))
	if err != nil {
		log.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	var v2 bytes.Buffer
	sw, err := seeds.NewStreamWriter(&v2)
	if err != nil {
		log.Fatal(err)
	}
	for i := range recs {
		if err := sw.Write(&recs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}

	badVarint := append([]byte{}, v1.Bytes()[:16]...)
	for i := 0; i < 11; i++ {
		badVarint = append(badVarint, 0x80)
	}
	var emptyV1 bytes.Buffer
	ew, err := seeds.NewWriter(&emptyV1, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := ew.Close(); err != nil {
		log.Fatal(err)
	}
	var emptyV2 bytes.Buffer
	esw, err := seeds.NewStreamWriter(&emptyV2)
	if err != nil {
		log.Fatal(err)
	}
	if err := esw.Close(); err != nil {
		log.Fatal(err)
	}
	// A v1 header that declares one more record than the file holds: the
	// reader must fail with an error (not EOF confusion) when the payload
	// runs out, and Remaining() must never go negative.
	overcount := append([]byte(nil), v1.Bytes()...)
	overcount[8]++
	entries := map[string][]byte{
		"valid-v1":          v1.Bytes(),
		"valid-v2-stream":   v2.Bytes(),
		"truncated-v1":      v1.Bytes()[:v1.Len()/2],
		"clipped-footer-v2": v2.Bytes()[:v2.Len()-4],
		"bad-varint":        badVarint,
		"garbage-header":    []byte("not a capture file"),
		"empty-v1":          emptyV1.Bytes(),
		"empty-v2-stream":   emptyV2.Bytes(),
		"overcount-v1":      overcount,
	}
	dir := filepath.Join("internal", "seeds", "testdata", "fuzz", "FuzzReadSeeds")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range entries {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", filepath.Join(dir, name), len(data))
	}
}
