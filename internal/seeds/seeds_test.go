package seeds

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dna"
	"repro/internal/minimizer"
	"repro/internal/vgraph"
)

func randomSeq(n int, seed int64) dna.Sequence {
	rng := rand.New(rand.NewSource(seed))
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func sampleRecords(seed int64, n int) []ReadSeeds {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ReadSeeds, n)
	for i := range out {
		nSeeds := rng.Intn(6)
		ss := make([]Seed, nSeeds)
		for j := range ss {
			ss[j] = Seed{
				Pos:     vgraph.Position{Node: vgraph.NodeID(1 + rng.Intn(1000)), Off: int32(rng.Intn(30))},
				ReadOff: int32(rng.Intn(120)),
				Rev:     rng.Intn(2) == 1,
				Score:   float32(1 + rng.Float64()*5),
			}
		}
		frag := -1
		end := 0
		if rng.Intn(2) == 1 {
			frag = rng.Intn(500)
			end = rng.Intn(2)
		}
		out[i] = ReadSeeds{
			Read: dna.Read{
				Name:     "read-" + string(rune('a'+i%26)),
				Seq:      randomSeq(80+rng.Intn(70), seed+int64(i)),
				Fragment: frag,
				End:      end,
			},
			Seeds: ss,
		}
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords(1, 25)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, len(recs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("Write(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != len(recs) {
		t.Fatalf("Remaining = %d, want %d", r.Remaining(), len(recs))
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if got.Read.Name != recs[i].Read.Name ||
			got.Read.Fragment != recs[i].Read.Fragment ||
			got.Read.End != recs[i].Read.End {
			t.Fatalf("record %d metadata mismatch: %+v vs %+v", i, got.Read, recs[i].Read)
		}
		if !got.Read.Seq.Equal(recs[i].Read.Seq) {
			t.Fatalf("record %d sequence mismatch", i)
		}
		if len(got.Seeds) != len(recs[i].Seeds) {
			t.Fatalf("record %d: %d seeds, want %d", i, len(got.Seeds), len(recs[i].Seeds))
		}
		if len(got.Seeds) > 0 && !reflect.DeepEqual(got.Seeds, recs[i].Seeds) {
			t.Fatalf("record %d seeds mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last record: err = %v, want io.EOF", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := sampleRecords(2, 10)
	path := filepath.Join(t.TempDir(), "seeds.bin")
	if err := WriteFile(path, recs); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Read.Seq.Equal(recs[i].Read.Seq) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWriterCountEnforced(t *testing.T) {
	recs := sampleRecords(3, 2)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&recs[1]); err == nil {
		t.Error("over-count write accepted")
	}
	// Under-count close.
	var buf2 bytes.Buffer
	w2, err := NewWriter(&buf2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err == nil {
		t.Error("under-count close accepted")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	recs := sampleRecords(7, 25)
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("Write(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != -1 {
		t.Fatalf("Remaining before footer = %d, want -1 (unknown)", r.Remaining())
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if got.Read.Name != recs[i].Read.Name ||
			got.Read.Fragment != recs[i].Read.Fragment ||
			got.Read.End != recs[i].Read.End {
			t.Fatalf("record %d metadata mismatch: %+v vs %+v", i, got.Read, recs[i].Read)
		}
		if !got.Read.Seq.Equal(recs[i].Read.Seq) {
			t.Fatalf("record %d sequence mismatch", i)
		}
		if len(got.Seeds) > 0 && !reflect.DeepEqual(got.Seeds, recs[i].Seeds) {
			t.Fatalf("record %d seeds mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last record: err = %v, want io.EOF", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining after footer = %d, want 0", r.Remaining())
	}
	// Repeated Next after the footer stays io.EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("second Next after footer: err = %v, want io.EOF", err)
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestStreamFooterVerified(t *testing.T) {
	recs := sampleRecords(8, 3)
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Corrupt the footer count (last 8 bytes) and expect a mismatch error.
	corrupt := append([]byte{}, data...)
	corrupt[len(corrupt)-1] ^= 0xFF
	r, err := NewReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		if _, lastErr = r.Next(); lastErr != nil {
			break
		}
	}
	if lastErr == io.EOF || lastErr == nil {
		t.Error("corrupted footer count not detected")
	}

	// Truncate inside the footer: the reader must error, not report EOF.
	r2, err := NewReader(bytes.NewReader(data[:len(data)-4]))
	if err != nil {
		t.Fatal(err)
	}
	for lastErr = nil; lastErr == nil; {
		_, lastErr = r2.Next()
	}
	if lastErr == io.EOF {
		t.Error("truncated footer read as clean EOF")
	}
}

func TestReadFileStreamVariant(t *testing.T) {
	recs := sampleRecords(9, 6)
	path := filepath.Join(t.TempDir(), "stream.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Read.Seq.Equal(recs[i].Read.Seq) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX0123456789ab"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	bad := append([]byte{}, binMagic[:]...)
	bad = append(bad, 0xFF, 0xFF, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	recs := sampleRecords(4, 5)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, len(recs))
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-10]))
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < len(recs); i++ {
		if _, err := r.Next(); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("truncated stream read without error")
	}
}

// TestExtractOrientation plants a read and its reverse complement and checks
// seed normalisation maps both onto the same graph positions.
func TestExtractOrientation(t *testing.T) {
	cfg := minimizer.Config{K: 13, W: 7}
	refLen := 600
	ref := randomSeq(refLen, 9)
	g := &vgraph.Graph{}
	var path []vgraph.NodeID
	for i := 0; i < refLen; i += 20 {
		end := i + 20
		if end > refLen {
			end = refLen
		}
		id, err := g.AddNode(ref[i:end].Clone())
		if err != nil {
			t.Fatal(err)
		}
		if len(path) > 0 {
			if err := g.AddEdge(path[len(path)-1], id); err != nil {
				t.Fatal(err)
			}
		}
		path = append(path, id)
	}
	ix, err := minimizer.Build(g, [][]vgraph.NodeID{path}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fwdRead := &dna.Read{Name: "f", Seq: ref[100:220].Clone(), Fragment: -1}
	revRead := &dna.Read{Name: "r", Seq: ref[100:220].RevComp(), Fragment: -1}
	fwdSeeds, err := Extract(ix, fwdRead)
	if err != nil {
		t.Fatal(err)
	}
	revSeeds, err := Extract(ix, revRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(fwdSeeds) == 0 {
		t.Fatal("no forward seeds")
	}
	if len(fwdSeeds) != len(revSeeds) {
		t.Fatalf("%d fwd seeds vs %d rev seeds", len(fwdSeeds), len(revSeeds))
	}
	// All forward seeds are Rev=false; all reverse-read seeds are Rev=true,
	// and after orientation the (Pos, ReadOff) pairs coincide.
	type anchor struct {
		pos     vgraph.Position
		readOff int32
	}
	fwdSet := map[anchor]bool{}
	for _, s := range fwdSeeds {
		if s.Rev {
			t.Errorf("forward read produced Rev seed %+v", s)
		}
		fwdSet[anchor{s.Pos, s.ReadOff}] = true
	}
	for _, s := range revSeeds {
		if !s.Rev {
			t.Errorf("reverse read produced forward seed %+v", s)
		}
		if !fwdSet[anchor{s.Pos, s.ReadOff}] {
			t.Errorf("reverse seed %+v has no forward counterpart", s)
		}
	}
}

func TestOpenIncremental(t *testing.T) {
	recs := sampleRecords(3, 5)
	path := filepath.Join(t.TempDir(), "seeds.bin")
	if err := WriteFile(path, recs); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Remaining() != len(recs) {
		t.Fatalf("Remaining = %d, want %d", f.Remaining(), len(recs))
	}
	for i := range recs {
		rs, err := f.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rs.Read.Name != recs[i].Read.Name || len(rs.Seeds) != len(recs[i].Seeds) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := f.Next(); err != io.EOF {
		t.Errorf("after last record: err = %v, want io.EOF", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("bad magic accepted")
	}
}
