// Command giraffe runs the parent-emulator pipeline: the full Giraffe-like
// mapping flow (preprocessing, the two critical functions, post-processing)
// under the VG-style batch scheduler. It can capture the proxy's inputs
// (-capture) and export the raw extensions expected by validation
// (-expected).
//
// Usage:
//
//	giraffe -gbz A-human.gbz -reads A-human.fq -threads 16 -out out.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fastq"
	"repro/internal/gaf"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/seeds"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giraffe: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	readsPath := flag.String("reads", "", "FASTQ reads (required)")
	threads := flag.Int("threads", 1, "worker threads")
	batch := flag.Int("batch", 512, "scheduler batch size")
	capacity := flag.Int("capacity", 256, "initial CachedGBWT capacity")
	out := flag.String("out", "", "alignment TSV output (default stdout)")
	capture := flag.String("capture", "", "write captured seeds (the proxy input) to this .bin file")
	timeline := flag.String("timeline", "", "write the per-thread region timeline CSV here")
	rescue := flag.Int("rescue", 0, "paired-end rescue with this fragment length (0 disables)")
	gafPath := flag.String("gaf", "", "also write alignments in Graph Alignment Format here")
	flag.Parse()
	if *gbzPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := fastq.ReadFile(*readsPath)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := giraffe.BuildIndexes(f)
	if err != nil {
		log.Fatal(err)
	}
	var rec *trace.Recorder
	if *timeline != "" {
		rec = trace.NewRecorder(*threads)
	}
	res, err := giraffe.Map(ix, reads, giraffe.Options{
		Threads:       *threads,
		BatchSize:     *batch,
		CacheCapacity: *capacity,
		Trace:         rec,
		CaptureSeeds:  *capture != "",
	})
	if err != nil {
		log.Fatal(err)
	}
	if *rescue > 0 {
		stats, err := giraffe.RescuePairs(ix, reads, res, giraffe.RescueParams{FragmentLen: *rescue}, giraffe.Options{
			Threads: *threads, BatchSize: *batch, CacheCapacity: *capacity,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pair rescue: %d pairs, %d both-mapped, %d attempted, %d rescued\n",
			stats.Pairs, stats.BothMapped, stats.Attempted, stats.Rescued)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "read\tmapped\tnode\toffset\tstrand\tscore\tmapq")
	mapped := 0
	for _, al := range res.Alignments {
		if !al.Mapped {
			fmt.Fprintf(bw, "%s\tfalse\t.\t.\t.\t.\t0\n", al.ReadName)
			continue
		}
		mapped++
		strand := "+"
		if al.Best.Rev {
			strand = "-"
		}
		fmt.Fprintf(bw, "%s\ttrue\t%d\t%d\t%s\t%d\t%d\n",
			al.ReadName, al.Best.StartPos.Node, al.Best.StartPos.Off, strand, al.Best.Score, al.MappingQuality)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mapped %d/%d reads in %v (%d threads)\n",
		mapped, len(reads), res.Makespan, *threads)

	if *capture != "" {
		if err := seeds.WriteFile(*capture, res.Captured); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "captured seeds -> %s\n", *capture)
	}
	if *gafPath != "" {
		file, err := os.Create(*gafPath)
		if err != nil {
			log.Fatal(err)
		}
		lens := make([]int, len(reads))
		for i := range reads {
			lens[i] = reads[i].Len()
		}
		if err := gaf.Write(file, f.Graph, res.Alignments, lens); err != nil {
			log.Fatal(err)
		}
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "GAF -> %s\n", *gafPath)
	}
	if rec != nil {
		file, err := os.Create(*timeline)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteTimelineCSV(file); err != nil {
			log.Fatal(err)
		}
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline -> %s\n", *timeline)
	}
}
