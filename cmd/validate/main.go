// Command validate reproduces the §VI-a functional validation end-to-end:
// it runs the parent emulator on the reads (exporting the extensions found
// by the critical functions and capturing the proxy's inputs), runs the
// proxy on those captured inputs, and checks both properties — (1) every
// expected match is in the proxy output, (2) the proxy output contains no
// unexpected match. The paper reports a 100% match; so does this pipeline.
//
// A third leg validates the streaming extraction path: the pipeline maps
// the same FASTQ file through giraffe.ExtractSource — no captured-seed file
// on disk — and its extensions must also match the parent 100%.
//
// Usage:
//
//	validate -gbz A-human.gbz -reads A-human.fq -threads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/extend"
	"repro/internal/fastq"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/seeds"
)

// collectEmitter accumulates each record's extensions in workload order.
type collectEmitter struct {
	exts [][]extend.Extension
}

func (c *collectEmitter) Emit(_ *seeds.ReadSeeds, exts []extend.Extension) error {
	c.exts = append(c.exts, exts)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	readsPath := flag.String("reads", "", "FASTQ reads (required)")
	threads := flag.Int("threads", 4, "worker threads")
	schedName := flag.String("sched", "dynamic", "proxy scheduler to validate")
	capacity := flag.Int("capacity", 256, "proxy CachedGBWT capacity to validate")
	flag.Parse()
	if *gbzPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := sched.ParseKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}

	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := fastq.ReadFile(*readsPath)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := giraffe.BuildIndexes(f)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running parent (Giraffe emulator) on %d reads...\n", len(reads))
	parent, err := giraffe.Map(ix, reads, giraffe.Options{Threads: *threads, CaptureSeeds: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent done in %v; running proxy (%s, capacity %d)...\n", parent.Makespan, kind, *capacity)
	proxy, err := core.Run(f, parent.Captured, core.Options{
		Threads: *threads, Scheduler: kind, CacheCapacity: *capacity,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proxy done in %v\n", proxy.Makespan)
	rep, err := core.Validate(parent.Extensions, proxy.Extensions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// Streaming leg: pipeline over ExtractSource, straight from the FASTQ
	// file — no captured-seed file on disk.
	fmt.Printf("running streaming proxy (ExtractSource over %s)...\n", *readsPath)
	m, err := core.NewMapperFromIndexes(f, ix.Dist, ix.Bi, core.Options{
		Scheduler: kind, CacheCapacity: *capacity,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := giraffe.OpenExtractSource(ix.MinIx, *readsPath, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	var col collectEmitter
	st, err := pipeline.Run(m, src, &col, pipeline.Options{Workers: *threads, Scheduler: kind})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming proxy done in %v\n", st.Makespan)
	streamRep, err := core.Validate(parent.Extensions, col.exts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %s\n", streamRep)
	if !rep.Match() || !streamRep.Match() {
		os.Exit(1)
	}
}
