// Command inspect reports the contents of a GBZ container: graph shape,
// GBWT statistics, the snarl decomposition, and per-haplotype summaries. It
// can also export the graph as GFA for use with standard pangenome tooling.
//
// Usage:
//
//	inspect -gbz data/A-human.gbz
//	inspect -gbz data/A-human.gbz -gfa graph.gfa
//	inspect -gbz data/A-human.gbz -haplotype 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gbz"
	"repro/internal/snarl"
	"repro/internal/vgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	gfaPath := flag.String("gfa", "", "export the graph as GFA to this path")
	haplotype := flag.Int("haplotype", -1, "print this haplotype's node path")
	flag.Parse()
	if *gbzPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	g := f.Graph
	fmt.Printf("graph:  %d nodes, %d edges, %d bp total sequence\n",
		g.NumNodes(), g.NumEdges(), g.TotalSeqLen())
	fmt.Printf("paths:  %d embedded haplotypes\n", g.NumPaths())
	fmt.Printf("gbwt:   %d paths, max node %d, %d bytes compressed\n",
		f.Index.NumPaths(), f.Index.MaxNode(), f.Index.CompressedSize())

	if tree, err := snarl.Decompose(g); err == nil {
		links := tree.Links()
		trivial := len(links) - tree.NumSnarls()
		var maxSpan int32
		for i := range links {
			if links[i].Max > maxSpan {
				maxSpan = links[i].Max
			}
		}
		fmt.Printf("snarls: %d (plus %d trivial chain links, %d boundaries, widest interior %d bp)\n",
			tree.NumSnarls(), trivial, len(tree.Boundaries()), maxSpan)
	} else {
		fmt.Printf("snarls: not decomposable (%v)\n", err)
	}

	// Degree histogram.
	deg := map[int]int{}
	for id := vgraph.NodeID(1); int(id) <= g.NumNodes(); id++ {
		deg[len(g.Successors(id))]++
	}
	fmt.Printf("out-degree histogram:")
	for d := 0; d <= 4; d++ {
		if deg[d] > 0 {
			fmt.Printf(" %d:%d", d, deg[d])
		}
	}
	fmt.Println()

	if *haplotype >= 0 {
		path, err := f.Index.ExtractPath(*haplotype)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, v := range path {
			total += g.SeqLen(v)
		}
		fmt.Printf("haplotype %d: %d nodes, %d bp\n", *haplotype, len(path), total)
		fmt.Printf("  first nodes: %v\n", path[:min(10, len(path))])
	}

	if *gfaPath != "" {
		out, err := os.Create(*gfaPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.WriteGFA(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GFA -> %s\n", *gfaPath)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
