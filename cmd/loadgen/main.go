// Command loadgen is the open-loop traffic harness for cmd/giraffed,
// modeled on ReqBench-style serving benchmarks: requests fire on a
// precomputed arrival schedule at the target RPS — never gated on earlier
// responses, so a slow server accumulates outstanding requests exactly as
// real traffic would — and the report gives service-latency quantiles
// (p50/p99/p999, measured client-side per request) plus the error mix.
//
// Arrival shapes: const (steady RPS), ramp (0 → RPS linearly over the
// duration), burst (square wave alternating 2×RPS and 0 each second).
// Client identity is zipf-skewed over -clients synthetic clients, so
// per-client admission control sees a realistic heavy-hitter mix.
//
// Reads are drawn round-robin from a FASTQ file (genworkload's .fq output
// works directly) in batches of -batch per request. The run is wired into
// the obs stack: counters and client-side latency histograms in the
// registry, an optional flight-recorder series, and a run manifest next to
// the JSON report, so cmd/obsdiff can diff two loadgen runs.
//
// The -assert-* flags turn the harness into a CI gate (make serve-smoke):
// the exit status is non-zero when an assertion fails.
//
// Usage:
//
//	loadgen -url http://localhost:8765 -fastq A-human.fq \
//	    -rps 50 -duration 15s -batch 16 -clients 32 -zipf 1.2 \
//	    -deadline 2s -report loadgen.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	url := flag.String("url", "http://localhost:8765", "giraffed base URL")
	fastqPath := flag.String("fastq", "", "FASTQ file the request batches are drawn from (required)")
	rps := flag.Float64("rps", 10, "target request rate per second")
	duration := flag.Duration("duration", 15*time.Second, "generation window")
	shape := flag.String("shape", "const", "arrival shape: const, ramp, burst")
	batch := flag.Int("batch", 16, "reads per request")
	clients := flag.Int("clients", 16, "synthetic client population")
	zipfS := flag.Float64("zipf", 1.2, "zipf skew of the client mix (>1; 0 = uniform)")
	seed := flag.Int64("seed", 1, "client-mix RNG seed")
	deadline := flag.Duration("deadline", 2*time.Second, "per-request service deadline sent to the server (0 = server default)")
	timeout := flag.Duration("timeout", 0, "client-side HTTP timeout (0 = deadline + 5s)")
	waitReady := flag.Duration("wait-ready", 0, "poll /healthz for up to this long before generating")
	report := flag.String("report", "", "write the JSON latency/error report here (default stdout)")
	manifest := flag.String("manifest", "", "write a run manifest JSON here")
	seriesPath := flag.String("series", "", "archive a client-side metric time-series here")
	seriesEvery := flag.Duration("series-interval", obs.DefaultSeriesInterval, "series self-scrape interval")
	assertMin2xx := flag.Int64("assert-min-2xx", -1, "fail unless at least this many 2xx responses")
	assertMin429 := flag.Int64("assert-min-429", -1, "fail unless at least this many 429 rejections")
	assertMinTimeout := flag.Int64("assert-min-timeout", -1, "fail unless at least this many deadline timeouts (504 or client-side)")
	assertMaxP99 := flag.Duration("assert-max-p99", 0, "fail when the 2xx p99 service latency exceeds this (0 = no bound)")
	assertMaxQueueP99 := flag.Duration("assert-max-queue-p99", 0, "fail when the server-attributed queue-wait p99 exceeds this (0 = no bound)")
	flag.Parse()
	if *fastqPath == "" || *rps <= 0 || *batch <= 0 || *clients <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	reads, err := fastq.ReadFile(*fastqPath)
	if err != nil {
		log.Fatal(err)
	}
	if len(reads) == 0 {
		log.Fatal("no reads in ", *fastqPath)
	}

	reg := obs.NewRegistry(1)
	man := obs.NewManifest("loadgen")
	man.AddFlagSet(flag.CommandLine)
	var series *obs.SeriesRecorder
	if *seriesPath != "" {
		series, err = obs.StartSeries(reg, nil, nil, *seriesPath, *seriesEvery, 0)
		if err != nil {
			log.Fatal(err)
		}
	}

	cto := *timeout
	if cto <= 0 {
		cto = *deadline + 5*time.Second
	}
	g := &generator{
		url:      *url,
		reads:    reads,
		batch:    *batch,
		deadline: *deadline,
		client:   &http.Client{Timeout: cto},
		sent:     reg.Counter(obs.MetricLoadgenSent),
		ok:       reg.Counter(obs.MetricLoadgenOK),
		rejected: reg.Counter(obs.MetricLoadgenRejected),
		timeouts: reg.Counter(obs.MetricLoadgenTimeout),
		errs:     reg.Counter(obs.MetricLoadgenErrors),
		hLatency: reg.Histogram(obs.MetricLoadgenLatency),
		statuses: make(map[int]int64),
	}

	if *waitReady > 0 {
		if err := waitHealthy(g.client, *url, *waitReady); err != nil {
			log.Fatal(err)
		}
	}

	// Client mix: zipf-skewed ids over the synthetic population, drawn once
	// per request on the arrival goroutine.
	rng := rand.New(rand.NewSource(*seed))
	var zipf *rand.Zipf
	if *zipfS > 0 && *clients > 1 {
		s := *zipfS
		if s <= 1 {
			s = 1.01 // rand.Zipf requires s > 1
		}
		zipf = rand.NewZipf(rng, s, 1, uint64(*clients-1))
	}
	nextClient := func() string {
		if zipf == nil {
			return fmt.Sprintf("c%d", rng.Intn(*clients))
		}
		return fmt.Sprintf("c%d", zipf.Uint64())
	}

	arrivals := schedule(*shape, *rps, *duration)
	log.Printf("open loop: %d requests over %v (%s @ %.1f rps, %d reads each, %d clients)",
		len(arrivals), *duration, *shape, *rps, *batch, *clients)

	// Every request carries a traceparent header with a generator-owned
	// trace ID, so the server's tail-sampled /traces can be joined back to
	// this run (and only this run) afterwards.
	idBase := uint64(time.Now().UnixNano()) | 1
	ownIDs := make(map[trace.ID]bool, len(arrivals))
	start := time.Now()
	var wg sync.WaitGroup
	next := 0
	seq := uint64(0)
	for _, at := range arrivals {
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		seq++
		id := trace.ID{Hi: idBase, Lo: seq}
		ownIDs[id] = true
		wg.Add(1)
		go g.fire(&wg, nextClient(), next, id)
		next += *batch
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := g.buildReport(*shape, *rps, elapsed)
	rep.Server = serverDecomp(g.client, *url, ownIDs)
	if series != nil {
		if err := series.Stop(); err != nil {
			log.Fatal(err)
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if *report != "" {
		if err := os.WriteFile(*report, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *report)
	} else {
		fmt.Println(string(out))
	}
	log.Printf("sent %d: %d ok, %d rejected (429), %d timeouts, %d errors; p50 %.1fms p99 %.1fms p999 %.1fms",
		rep.Sent, rep.OK, rep.Rejected, rep.Timeouts, rep.Errors,
		rep.P50Ms, rep.P99Ms, rep.P999Ms)
	if *manifest != "" {
		if err := man.AddWorkload("fastq", *fastqPath); err != nil {
			log.Fatal(err)
		}
		if *report != "" {
			man.AddResult(*report)
		}
		if *seriesPath != "" {
			man.AddResult(*seriesPath)
		}
		man.Finish(reg)
		if err := man.Write(*manifest); err != nil {
			log.Fatal(err)
		}
		log.Printf("run manifest written to %s", *manifest)
	}

	failed := false
	check := func(name string, got int64, min int64) {
		if min >= 0 && got < min {
			log.Printf("ASSERT FAILED: %s = %d, want >= %d", name, got, min)
			failed = true
		}
	}
	check("2xx", rep.OK, *assertMin2xx)
	check("429", rep.Rejected, *assertMin429)
	check("timeouts", rep.Timeouts, *assertMinTimeout)
	if *assertMaxP99 > 0 && rep.OK > 0 && rep.P99Ms > float64(*assertMaxP99)/float64(time.Millisecond) {
		log.Printf("ASSERT FAILED: p99 = %.1fms, want <= %v", rep.P99Ms, *assertMaxP99)
		failed = true
	}
	if *assertMaxQueueP99 > 0 {
		switch {
		case rep.Server == nil:
			log.Printf("ASSERT FAILED: -assert-max-queue-p99 set but the server exposed no queue-wait attribution")
			failed = true
		case rep.Server.QueueWaitP99Ms > float64(*assertMaxQueueP99)/float64(time.Millisecond):
			log.Printf("ASSERT FAILED: server queue-wait p99 = %.1fms (%s), want <= %v",
				rep.Server.QueueWaitP99Ms, rep.Server.QueueWaitSource, *assertMaxQueueP99)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// generator owns the shared request state and result accounting.
type generator struct {
	url      string
	reads    []dna.Read
	batch    int
	deadline time.Duration
	client   *http.Client

	sent, ok, rejected, timeouts, errs *obs.Counter
	hLatency                           *obs.Histogram

	mu        sync.Mutex
	latencies []time.Duration // 2xx service latencies, client-side
	statuses  map[int]int64
}

// fire sends one request (called on its own goroutine: open loop).
func (g *generator) fire(wg *sync.WaitGroup, client string, offset int, id trace.ID) {
	defer wg.Done()
	g.sent.Inc(0)
	body := g.body(offset)
	req, err := http.NewRequest(http.MethodPost, g.url+"/map", bytes.NewReader(body))
	if err != nil {
		g.record(0, 0, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", client)
	req.Header.Set(trace.TraceparentHeader, trace.Traceparent(id))
	if g.deadline > 0 {
		req.Header.Set("X-Deadline-Ms", fmt.Sprint(int64(g.deadline/time.Millisecond)))
	}
	t0 := time.Now()
	resp, err := g.client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		g.record(lat, 0, err)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	g.record(lat, resp.StatusCode, nil)
}

// body renders the request batch starting at read offset (wrapping).
func (g *generator) body(offset int) []byte {
	mr := serve.MapRequest{Reads: make([]serve.WireRead, g.batch)}
	for i := 0; i < g.batch; i++ {
		r := &g.reads[(offset+i)%len(g.reads)]
		mr.Reads[i] = serve.WireRead{Name: r.Name, Seq: r.Seq.String()}
	}
	b, err := json.Marshal(mr)
	if err != nil {
		panic(err) // request shape is fully under our control
	}
	return b
}

// record accounts one completed request.
func (g *generator) record(lat time.Duration, status int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case err != nil:
		// A client-side timeout is the open-loop view of a blown deadline.
		if os.IsTimeout(err) {
			g.timeouts.Inc(0)
			g.statuses[-1]++
		} else {
			g.errs.Inc(0)
			g.statuses[0]++
		}
	case status >= 200 && status < 300:
		g.ok.Inc(0)
		g.hLatency.Observe(0, lat)
		g.latencies = append(g.latencies, lat)
		g.statuses[status]++
	case status == http.StatusTooManyRequests:
		g.rejected.Inc(0)
		g.statuses[status]++
	case status == http.StatusGatewayTimeout:
		g.timeouts.Inc(0)
		g.statuses[status]++
	default:
		g.errs.Inc(0)
		g.statuses[status]++
	}
}

// Report is the JSON artifact serve-smoke uploads: the client-side view of
// one serving run.
type Report struct {
	Shape          string           `json:"shape"`
	TargetRPS      float64          `json:"target_rps"`
	AchievedRPS    float64          `json:"achieved_rps"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Sent           int64            `json:"sent"`
	OK             int64            `json:"ok"`
	Rejected       int64            `json:"rejected_429"`
	Timeouts       int64            `json:"timeouts"`
	Errors         int64            `json:"errors"`
	StatusMix      map[string]int64 `json:"status_mix"`
	MeanMs         float64          `json:"mean_ms"`
	P50Ms          float64          `json:"p50_ms"`
	P90Ms          float64          `json:"p90_ms"`
	P99Ms          float64          `json:"p99_ms"`
	P999Ms         float64          `json:"p999_ms"`
	MaxMs          float64          `json:"max_ms"`
	// Server is the server-attributed latency decomposition, read back from
	// the tail-sampled /traces (nil when the server samples no traces for
	// this run): where sampled requests' time went — queue wait vs map
	// service — per status class.
	Server *ServerDecomp `json:"server,omitempty"`
}

// ServerDecomp splits sampled requests' server-side time into queue wait
// (sub-batches parked in the session claim queue) and map service (kernel
// time on workers), per status class. Sampling is tail-based — every non-2xx
// plus the slowest 2xx — so the 2xx rows describe the latency tail, not the
// mean request.
type ServerDecomp struct {
	TracesSampled int `json:"traces_sampled"`
	// QueueWaitP99Ms is the gate the -assert-max-queue-p99 flag checks:
	// p99 of per-request queue wait over this run's sampled traces, falling
	// back to the server's serve_queue_wait_seconds histogram p99 (per
	// sub-batch, whole server lifetime) when no traces matched.
	QueueWaitP99Ms  float64                `json:"queue_wait_p99_ms"`
	QueueWaitSource string                 `json:"queue_wait_source"`
	ByClass         map[string]ClassDecomp `json:"by_class,omitempty"`
}

// ClassDecomp is one status class's decomposition over sampled traces.
type ClassDecomp struct {
	Traces          int     `json:"traces"`
	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms"`
	QueueWaitP99Ms  float64 `json:"queue_wait_p99_ms"`
	MapMeanMs       float64 `json:"map_mean_ms"`
	MapP99Ms        float64 `json:"map_p99_ms"`
}

// classKey buckets a status the same way the server's trace summary does.
func classKey(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status == 429:
		return "429"
	case status == 504:
		return "504"
	default:
		return "other"
	}
}

// serverDecomp reads the server's sampled traces and keeps the ones this run
// generated (matched by trace ID), decomposing each into queue-wait and
// map-service time from its spans. Best-effort: a server without /traces
// (older build, tracing disabled) yields nil rather than an error — except
// that the histogram fallback still reports a queue-wait p99 when the
// endpoint exists but sampled none of ours.
func serverDecomp(c *http.Client, url string, own map[trace.ID]bool) *ServerDecomp {
	resp, err := c.Get(url + "/traces")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap obs.ReqTraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}

	type perClass struct{ queue, mapped []float64 }
	classes := make(map[string]*perClass)
	var allQueue []float64
	matched := 0
	for _, tr := range snap.Traces {
		if !own[tr.TraceID] {
			continue
		}
		matched++
		var qw, ms float64
		for _, sp := range tr.Spans {
			switch sp.Name {
			case obs.SpanQueueWait:
				qw += float64(sp.DurNanos) / 1e6
			case obs.SpanMapSubbatch:
				ms += float64(sp.DurNanos) / 1e6
			}
		}
		key := classKey(tr.Status)
		pc := classes[key]
		if pc == nil {
			pc = &perClass{}
			classes[key] = pc
		}
		pc.queue = append(pc.queue, qw)
		pc.mapped = append(pc.mapped, ms)
		allQueue = append(allQueue, qw)
	}

	d := &ServerDecomp{TracesSampled: matched, ByClass: make(map[string]ClassDecomp)}
	if matched > 0 {
		d.QueueWaitSource = "traces"
		d.QueueWaitP99Ms = quantileMs(allQueue, 0.99)
		for key, pc := range classes {
			d.ByClass[key] = ClassDecomp{
				Traces:          len(pc.queue),
				QueueWaitMeanMs: meanMs(pc.queue),
				QueueWaitP99Ms:  quantileMs(pc.queue, 0.99),
				MapMeanMs:       meanMs(pc.mapped),
				MapP99Ms:        quantileMs(pc.mapped, 0.99),
			}
		}
		return d
	}
	// Nothing of ours sampled (all-fast 2xx runs lose the reservoir race to
	// other phases): fall back to the server's queue-wait histogram so the
	// CI gate still has a signal. Per sub-batch and lifetime-wide, hence the
	// explicit source marker.
	statsResp, err := c.Get(url + "/stats")
	if err != nil {
		return nil
	}
	defer statsResp.Body.Close()
	var stats struct {
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil || stats.Metrics == nil {
		return nil
	}
	h, ok := stats.Metrics.Histograms[obs.MetricServeQueueWait]
	if !ok {
		return nil
	}
	d.QueueWaitSource = "histogram"
	d.QueueWaitP99Ms = h.P99 * 1e3
	return d
}

// meanMs averages a millisecond sample set (0 when empty).
func meanMs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return obs.SanitizeFloat(sum / float64(len(xs)))
}

// quantileMs is the nearest-rank quantile of a millisecond sample set.
func quantileMs(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return obs.SanitizeFloat(sorted[i])
}

func (g *generator) buildReport(shape string, rps float64, elapsed time.Duration) *Report {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := &Report{
		Shape:          shape,
		TargetRPS:      rps,
		ElapsedSeconds: obs.SanitizeFloat(elapsed.Seconds()),
		Sent:           g.sent.Value(),
		OK:             g.ok.Value(),
		Rejected:       g.rejected.Value(),
		Timeouts:       g.timeouts.Value(),
		Errors:         g.errs.Value(),
		StatusMix:      make(map[string]int64, len(g.statuses)),
	}
	rep.AchievedRPS = obs.Rate(float64(rep.Sent), elapsed)
	for status, n := range g.statuses {
		key := fmt.Sprintf("%d", status)
		switch status {
		case -1:
			key = "client_timeout"
		case 0:
			key = "transport_error"
		}
		rep.StatusMix[key] = n
	}
	if len(g.latencies) > 0 {
		sort.Slice(g.latencies, func(i, j int) bool { return g.latencies[i] < g.latencies[j] })
		var sum time.Duration
		for _, l := range g.latencies {
			sum += l
		}
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		q := func(p float64) float64 {
			i := int(p * float64(len(g.latencies)-1))
			return ms(g.latencies[i])
		}
		rep.MeanMs = ms(sum / time.Duration(len(g.latencies)))
		rep.P50Ms = q(0.50)
		rep.P90Ms = q(0.90)
		rep.P99Ms = q(0.99)
		rep.P999Ms = q(0.999)
		rep.MaxMs = ms(g.latencies[len(g.latencies)-1])
	}
	return rep
}

// schedule precomputes the arrival offsets for the shape — the open-loop
// plan is fixed before the first request fires, so server slowdown cannot
// throttle the generator.
func schedule(shape string, rps float64, duration time.Duration) []time.Duration {
	var out []time.Duration
	switch shape {
	case "const":
		period := time.Duration(float64(time.Second) / rps)
		for at := time.Duration(0); at < duration; at += period {
			out = append(out, at)
		}
	case "ramp":
		// Rate grows linearly 0 → rps: arrival density integrates to
		// rps/2 × duration requests, spaced by the inverse rate.
		at := time.Duration(float64(time.Second) / rps) // skip the t=0 singularity
		for at < duration {
			out = append(out, at)
			frac := float64(at) / float64(duration)
			rate := rps * frac
			if rate < 1e-3 {
				rate = 1e-3
			}
			at += time.Duration(float64(time.Second) / rate)
		}
	case "burst":
		// Square wave: 2×rps for one second, silent the next.
		period := time.Duration(float64(time.Second) / (2 * rps))
		for at := time.Duration(0); at < duration; at += period {
			if (at/time.Second)%2 == 0 {
				out = append(out, at)
			}
		}
	default:
		log.Fatalf("unknown shape %q (const, ramp, burst)", shape)
	}
	return out
}

// waitHealthy polls /healthz until it answers 200, the readiness hand-off
// that lets serve-smoke boot giraffed in the background without sleeps.
func waitHealthy(c *http.Client, url string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := c.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %v", url, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
