// Command genworkload generates a synthetic input set (Table III stand-in):
// the pangenome reference as a .gbz container, the reads as FASTQ, and the
// captured seeds as the proxy's sequence-seeds.bin.
//
// Usage:
//
//	genworkload -input A-human -scale 1.0 -outdir data/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/fastq"
	"repro/internal/gbz"
	"repro/internal/seeds"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genworkload: ")
	input := flag.String("input", "A-human", "input set: A-human, B-yeast, C-HPRC, D-HPRC")
	scale := flag.Float64("scale", 1.0, "read-count scale factor")
	zipf := flag.Float64("zipf", 0, "zipf skew of read start positions (>1; 0 = uniform, byte-identical to historical output)")
	outdir := flag.String("outdir", ".", "output directory")
	flag.Parse()

	spec, err := workload.ByName(*input)
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(*scale)
	spec.ZipfS = *zipf
	fmt.Printf("generating %s: %d reads (%s), reference %d bp, %d haplotypes, zipf %g\n",
		spec.Name, spec.Reads, spec.Workflow, spec.RefLen, spec.Haplotypes, spec.ZipfS)
	b, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}
	gbzPath := filepath.Join(*outdir, spec.Name+".gbz")
	if err := gbz.Save(gbzPath, b.GBZ()); err != nil {
		log.Fatal(err)
	}
	fqPath := filepath.Join(*outdir, spec.Name+".fq")
	if err := fastq.WriteFile(fqPath, b.Reads); err != nil {
		log.Fatal(err)
	}
	faPath := filepath.Join(*outdir, spec.Name+".fa")
	if err := fastq.WriteFastaFile(faPath, []fastq.FastaRecord{
		{Name: spec.Name + " linear reference", Seq: b.Pangenome.Reference()},
	}); err != nil {
		log.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		log.Fatal(err)
	}
	binPath := filepath.Join(*outdir, spec.Name+"-seeds.bin")
	if err := seeds.WriteFile(binPath, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s, %s, %s, %s\n", gbzPath, fqPath, faPath, binPath)
	fmt.Printf("graph: %d nodes, %d edges, %d bp; GBWT: %d paths, %d compressed bytes\n",
		b.Pangenome.NumNodes(), b.Pangenome.NumEdges(), b.Pangenome.TotalSeqLen(),
		b.Index.NumPaths(), b.Index.CompressedSize())
}
