// Command vetgiraffe is the project's multichecker: it runs the
// miniGiraffe-specific analyzers (internal/analysis/...) over the given
// package patterns and exits non-zero on any finding. `make lint` runs it
// over ./... as a CI gate.
//
// Usage:
//
//	vetgiraffe [-only atomicmix,tracepair] [-list] [packages...]
//
// Findings can be suppressed case by case with a trailing or preceding-line
// `//vetgiraffe:ignore <analyzer> <reason>` comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/cachepow2"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/nakedgoroutine"
	"repro/internal/analysis/probeexclusive"
	"repro/internal/analysis/tracepair"
)

var all = []*analysis.Analyzer{
	atomicmix.Analyzer,
	cachepow2.Analyzer,
	hotalloc.Analyzer,
	metricname.Analyzer,
	nakedgoroutine.Analyzer,
	probeexclusive.Analyzer,
	tracepair.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "vetgiraffe: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetgiraffe: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetgiraffe: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vetgiraffe: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
