// Command vetgiraffe is the project's multichecker: it runs the
// miniGiraffe-specific analyzers (internal/analysis/...) over the given
// package patterns and exits non-zero on any finding. `make lint` runs it
// over ./... as a CI gate.
//
// Usage:
//
//	vetgiraffe [-only atomicmix,tracepair] [-list] [-workers N]
//	           [-reportdir DIR] [-update-escapes] [packages...]
//
// Packages load and analyze across a worker pool; analyzers exchanging
// facts (hotpath) see their dependencies analyzed first, and diagnostic
// output is deterministically sorted either way. When the full analyzer set
// runs, ignore directives that suppress nothing are themselves reported as
// stale.
//
// -reportdir archives the diagnostic report (vetgiraffe.txt) and the
// escapebudget comparison (escapes_diff.txt) for CI artifacts.
// -update-escapes rewrites results/escapes_baseline.txt from the current
// compiler verdicts instead of gating against it.
//
// Findings can be suppressed case by case with a trailing or preceding-line
// `//vetgiraffe:ignore <analyzer>[,<analyzer>...] <reason>` comment.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/cachepow2"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/escapebudget"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/nakedgoroutine"
	"repro/internal/analysis/probeexclusive"
	"repro/internal/analysis/tracepair"
)

var all = []*analysis.Analyzer{
	atomicmix.Analyzer,
	cachepow2.Analyzer,
	ctxflow.Analyzer,
	escapebudget.Analyzer,
	hotalloc.Analyzer,
	hotpath.Analyzer,
	metricname.Analyzer,
	nakedgoroutine.Analyzer,
	probeexclusive.Analyzer,
	tracepair.Analyzer,
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr *os.File, args []string) int {
	fs := flag.NewFlagSet("vetgiraffe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	workers := fs.Int("workers", 0, "analysis worker pool size (default: GOMAXPROCS)")
	reportDir := fs.String("reportdir", "", "directory to archive vetgiraffe.txt and escapes_diff.txt reports")
	updateEscapes := fs.Bool("update-escapes", false,
		"rewrite "+escapebudget.BaselinePath+" from current compiler verdicts and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			kind := ""
			if a.ModuleRun != nil {
				kind = " (module analyzer)"
			}
			fmt.Fprintf(stdout, "%-16s %s%s\n", a.Name, a.Doc, kind)
		}
		return 0
	}

	selected := all
	fullSet := true
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		var names []string
		for _, a := range all {
			byName[a.Name] = a
			names = append(names, a.Name)
		}
		selected = nil
		fullSet = false
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "vetgiraffe: unknown analyzer %q (available: %s)\n",
					strings.TrimSpace(name), strings.Join(names, ", "))
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vetgiraffe: %v\n", err)
		return 2
	}

	if *updateEscapes {
		states, err := escapebudget.Current(".", pkgs)
		if err != nil {
			fmt.Fprintf(stderr, "vetgiraffe: %v\n", err)
			return 2
		}
		if err := escapebudget.WriteBaseline(escapebudget.BaselinePath, states); err != nil {
			fmt.Fprintf(stderr, "vetgiraffe: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "vetgiraffe: wrote %s (%d hot functions)\n", escapebudget.BaselinePath, len(states))
		return 0
	}

	// Module analyzers run once over the whole set; their diagnostics join
	// the per-package passes through ExtraDiags so ignore directives and
	// stale accounting treat them uniformly.
	var extra []analysis.Diagnostic
	var escReport string
	for _, a := range selected {
		if a.ModuleRun == nil {
			continue
		}
		diags, report, err := a.ModuleRun(".", pkgs)
		if err != nil {
			fmt.Fprintf(stderr, "vetgiraffe: %s: %v\n", a.Name, err)
			return 2
		}
		extra = append(extra, diags...)
		if a.Name == escapebudget.Analyzer.Name {
			escReport = report
		}
	}

	diags, err := analysis.RunWith(analysis.RunOptions{
		Workers:      *workers,
		StaleIgnores: fullSet,
		ExtraDiags:   extra,
	}, pkgs, selected)
	if err != nil {
		fmt.Fprintf(stderr, "vetgiraffe: %v\n", err)
		return 2
	}

	cwd, _ := os.Getwd()
	var report bytes.Buffer
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(&report, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	stdout.Write(report.Bytes())

	if *reportDir != "" {
		if err := writeReports(*reportDir, report.String(), escReport); err != nil {
			fmt.Fprintf(stderr, "vetgiraffe: %v\n", err)
			return 2
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(stderr, "vetgiraffe: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func writeReports(dir, diagReport, escReport string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if diagReport == "" {
		diagReport = "vetgiraffe: no findings\n"
	}
	if err := os.WriteFile(filepath.Join(dir, "vetgiraffe.txt"), []byte(diagReport), 0o644); err != nil {
		return err
	}
	if escReport != "" {
		if err := os.WriteFile(filepath.Join(dir, "escapes_diff.txt"), []byte(escReport), 0o644); err != nil {
			return err
		}
	}
	return nil
}
