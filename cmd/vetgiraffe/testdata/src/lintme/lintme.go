// Package lintme is a CLI-test fixture for cmd/vetgiraffe: Hot carries a
// deliberate hotalloc finding, Clean none. Under testdata/ the package is
// invisible to ./... patterns, so `make lint` never sees it.
package lintme

import "fmt"

// Hot formats in a hot function: a guaranteed hotalloc finding.
//
//minigiraffe:hot
func Hot(x int) string {
	return fmt.Sprintf("%d", x)
}

// Clean is hot but allocation-free.
//
//minigiraffe:hot
func Clean(x int) int {
	return x + 1
}
