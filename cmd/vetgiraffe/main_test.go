package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run() with stdout/stderr captured through temp files and
// returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	open := func(name string) *os.File {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	stdout, stderr := open("stdout"), open("stderr")
	code := run(stdout, stderr, args)
	stdout.Close()
	stderr.Close()
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return code, read("stdout"), read("stderr")
}

func TestListExitsZeroAndNamesEveryAnalyzer(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, a := range all {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
	if !strings.Contains(out, "(module analyzer)") {
		t.Errorf("-list output does not mark module analyzers:\n%s", out)
	}
}

func TestUnknownOnlyAnalyzerExitsTwo(t *testing.T) {
	code, _, errOut := runCLI(t, "-only", "nosuch", "./testdata/src/lintme")
	if code != 2 {
		t.Fatalf("-only nosuch exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr does not name the unknown analyzer:\n%s", errOut)
	}
	if !strings.Contains(errOut, "available:") || !strings.Contains(errOut, "hotpath") {
		t.Errorf("stderr does not list the available analyzers:\n%s", errOut)
	}
}

func TestUnknownAmongKnownStillExitsTwo(t *testing.T) {
	code, _, errOut := runCLI(t, "-only", "hotalloc,bogus", "./testdata/src/lintme")
	if code != 2 {
		t.Fatalf("-only hotalloc,bogus exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown analyzer "bogus"`) {
		t.Errorf("stderr does not name the unknown analyzer:\n%s", errOut)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, out, errOut := runCLI(t, "-only", "hotalloc", "./testdata/src/lintme")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout:\n%s\nstderr:\n%s)", code, out, errOut)
	}
	if !strings.Contains(out, "hotalloc") || !strings.Contains(out, "lintme.go") {
		t.Errorf("stdout does not report the fixture finding:\n%s", out)
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr does not summarize the finding count:\n%s", errOut)
	}
}

func TestCleanRunExitsZero(t *testing.T) {
	code, out, errOut := runCLI(t, "-only", "nakedgoroutine", "./testdata/src/lintme")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout:\n%s\nstderr:\n%s)", code, out, errOut)
	}
	if out != "" {
		t.Errorf("clean run produced output:\n%s", out)
	}
}

func TestReportDirArchivesFindings(t *testing.T) {
	dir := t.TempDir()
	code, _, _ := runCLI(t, "-only", "hotalloc", "-reportdir", dir, "./testdata/src/lintme")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	b, err := os.ReadFile(filepath.Join(dir, "vetgiraffe.txt"))
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(string(b), "hotalloc") {
		t.Errorf("archived report missing the finding:\n%s", b)
	}
}
