// Command profdiff is the function-level half of the perf gate: where
// obsdiff compares two runs' metric series, profdiff aligns their CPU
// profiles by symbol and fails the build when a function's share of the
// run's CPU time rises past threshold. Inputs are single pprof files or
// directories of rotated cpu-*.pb.gz segments (the layout the -profile
// flag writes); the report breaks flat time down by the stage pprof label
// so a regression names both the function and the pipeline stage it hit.
//
// Usage:
//
//	profdiff -baseline results/baseline/profiles -candidate obs-smoke/profiles -report profdiff.md
//	profdiff -merge -o default.pgo obs-smoke/profiles
//
// The -merge mode combines the input profiles/segment directories into one
// profile (summing samples with identical stacks and labels) and writes it
// to -o — `make pgo-capture` uses it to distill bench-smoke captures into
// the committed default.pgo.
//
// Exit status: 0 = within thresholds, 1 = regression, 2 = usage or load
// error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profdiff: ")
	baseline := flag.String("baseline", "", "baseline CPU profile: pprof file or directory of cpu-*.pb.gz segments")
	candidate := flag.String("candidate", "", "candidate CPU profile: pprof file or directory of cpu-*.pb.gz segments")
	report := flag.String("report", "", "write the markdown report here (default stdout)")
	reportOnly := flag.Bool("report-only", false, "always exit 0: report regressions without failing")
	shareRise := flag.Float64("share-rise", 0, "flat-share rise in absolute points that fails (default 0.04 = +4pt)")
	minShare := flag.Float64("min-share", 0, "candidate flat share below which a rise is noise (default 0.05 = 5%)")
	top := flag.Int("top", 0, "rows in the report (default 20; failed rows always shown)")
	allowMissing := flag.Bool("allow-missing-baseline", false, "exit 0 with a notice when the baseline does not exist yet")
	merge := flag.Bool("merge", false, "merge mode: combine the positional inputs into one profile")
	out := flag.String("o", "", "merge mode: output file (required with -merge)")
	flag.Parse()

	if *merge {
		if *out == "" || flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "profdiff: -merge needs -o FILE and at least one input profile or segment directory")
			os.Exit(2)
		}
		profiles := make([]*obs.Profile, 0, flag.NArg())
		for _, path := range flag.Args() {
			p, err := obs.LoadCPUProfiles(path)
			if err != nil {
				log.Print(err)
				os.Exit(2)
			}
			profiles = append(profiles, p)
		}
		merged, err := obs.MergePProf(profiles)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		data, err := merged.EncodePProf()
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Print(err)
			os.Exit(2)
		}
		fmt.Printf("profdiff: merged %d input(s), %d samples, %v CPU -> %s\n",
			flag.NArg(), len(merged.Samples), obsTotal(merged), *out)
		return
	}

	if *baseline == "" || *candidate == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := obs.LoadCPUProfiles(*baseline)
	if err != nil {
		if *allowMissing && os.IsNotExist(err) {
			fmt.Printf("profdiff: no baseline at %s; nothing to compare (record one with `make perfdiff` or commit results/baseline)\n", *baseline)
			return
		}
		log.Print(err)
		os.Exit(2)
	}
	cand, err := obs.LoadCPUProfiles(*candidate)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	r := obs.DiffProfiles(base, cand, obs.ProfDiffOptions{
		ShareRise: *shareRise,
		MinShare:  *minShare,
		Top:       *top,
	})

	w := os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := r.WriteMarkdown(w); err != nil {
		log.Print(err)
		os.Exit(2)
	}

	if r.Regressed() {
		fmt.Fprintln(os.Stderr, "profdiff: REGRESSED (see report)")
		if !*reportOnly {
			os.Exit(1)
		}
	}
}

// obsTotal sums the merged profile's CPU column for the log line.
func obsTotal(p *obs.Profile) string {
	var total int64
	vi := len(p.SampleTypes) - 1
	for i, vt := range p.SampleTypes {
		if vt.Type == "cpu" {
			vi = i
		}
	}
	if vi < 0 {
		return "0s"
	}
	for _, s := range p.Samples {
		if vi < len(s.Values) {
			total += s.Values[vi]
		}
	}
	return fmt.Sprintf("%.2fs", float64(total)/1e9)
}
