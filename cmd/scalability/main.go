// Command scalability reproduces the scaling experiments: the parent's
// strong scaling of the extension (Figure 4), the proxy's scalability on
// the four modelled systems (Figure 5), and the fastest-time table
// (Table VII).
//
// Usage:
//
//	scalability -scale 1.0 -threads 4             # Figures 4 and 5, Table VII
//	scalability -experiment figure4               # one experiment only
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalability: ")
	scale := flag.Float64("scale", 1.0, "read-count scale factor")
	threads := flag.Int("threads", 0, "local measurement threads (0 = all CPUs)")
	repeats := flag.Int("repeats", 1, "repeats per measured point")
	experiment := flag.String("experiment", "all", "figure4, figure5, table7, or all")
	manifest := flag.String("manifest", "scalability-manifest.json", "run manifest JSON path (\"off\" disables)")
	seriesPath := flag.String("series", "", "archive a delta-encoded metric time-series here (flight recorder; enables the metrics registry)")
	seriesEvery := flag.Duration("series-interval", obs.DefaultSeriesInterval, "series self-scrape interval")
	flag.Parse()

	var reg *obs.Registry
	var series *obs.SeriesRecorder
	if *seriesPath != "" {
		n := *threads
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		reg = obs.NewRegistry(n + 2)
		var err error
		series, err = obs.StartSeries(reg, nil, nil, *seriesPath, *seriesEvery, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	s := experiments.NewSuite(experiments.Config{
		Scale: *scale, Threads: *threads, Repeats: *repeats, Out: os.Stdout, Obs: reg,
	})
	man := obs.NewManifest("scalability")
	man.AddFlagSet(flag.CommandLine)
	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		man.Notes["ran_"+name] = "true"
	}
	run("figure4", func() error { _, err := s.Figure4(nil); return err })
	run("figure5", func() error { _, err := s.Figure5(); return err })
	run("table7", func() error { _, err := s.Table7(); return err })
	if series != nil {
		if err := series.Stop(); err != nil {
			log.Fatal(err)
		}
	}
	if *manifest != "off" && *manifest != "" {
		if *seriesPath != "" {
			man.AddResult(*seriesPath)
			man.Notes["series"] = filepath.Base(*seriesPath)
		}
		man.Finish(reg)
		if err := man.Write(*manifest); err != nil {
			log.Fatal(err)
		}
	}
}
