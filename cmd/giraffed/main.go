// Command giraffed is mapping-as-a-service: a long-lived HTTP/JSON server
// that loads the pangenome substrate (graph, GBWT, minimizer and distance
// indexes) once and then maps read batches submitted by many concurrent
// clients through a persistent pipeline.Session worker pool.
//
// Request-scoped policies (package serve): per-client in-flight caps and a
// bounded shared mapping queue answer overload with 429 + Retry-After;
// per-request deadlines (X-Deadline-Ms, clamped to -max-deadline) cancel
// queued and in-flight mapping and surface as 504; SIGTERM/SIGINT drains
// gracefully — /healthz flips to 503, accepted requests finish, the run
// manifest is written, and the process exits 0.
//
// Endpoints: POST /map, GET /healthz, /stats, /metrics (Prometheus),
// /slow (slowest-read exemplars), /traces (tail-sampled request traces:
// every non-2xx request plus the top-K slowest 2xx, as admit / queue_wait /
// map_subbatch / emit span trees). The usual observability flags (-series,
// -slow, -manifest, -debug-addr) behave as in minigiraffe, so cmd/obsdiff
// can diff serving runs against each other.
//
// Usage:
//
//	giraffed -gbz A-human.gbz -addr localhost:8765 -threads 8 \
//	    -depth 32 -per-client 4 -default-deadline 10s
//	curl -s localhost:8765/map -d '{"reads":[{"name":"r1","seq":"ACGT..."}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giraffed: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	addr := flag.String("addr", "localhost:8765", "serve address")
	threads := flag.Int("threads", 0, "map-worker threads (0 = all CPUs)")
	batch := flag.Int("batch", 512, "sub-batch size a request is split into (per-batch CachedGBWT lifetime)")
	capacity := flag.Int("capacity", 256, "initial CachedGBWT capacity (-1 disables caching); with -epoch, sizes the per-worker overflow layer")
	epoch := flag.Int("epoch", 0, "epoch-published shared cache capacity per GBWT direction (0 = per-batch rebuilds)")
	schedName := flag.String("sched", "dynamic", "scheduler: dynamic, work-stealing, static")
	depth := flag.Int("depth", 0, "mapping queue bound in sub-batches (admission control; 0 = 2x threads)")
	perClient := flag.Int("per-client", 4, "max in-flight requests per client")
	maxReads := flag.Int("max-reads", 4096, "max reads per request")
	defaultDeadline := flag.Duration("default-deadline", 10*time.Second, "request deadline when the client sends none")
	maxDeadline := flag.Duration("max-deadline", time.Minute, "upper clamp on client deadlines")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After advertised on 429/503")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	manifest := flag.String("manifest", "", "write the run manifest JSON here on shutdown")
	seriesPath := flag.String("series", "", "archive a delta-encoded metric time-series here (flight recorder)")
	seriesEvery := flag.Duration("series-interval", obs.DefaultSeriesInterval, "series self-scrape interval")
	slowK := flag.Int("slow", 0, "retain the K slowest reads as exemplars (served at /slow, archived in the manifest)")
	traceK := flag.Int("trace-k", 32, "tail-sample the K slowest 2xx requests per worker shard (0 disables request tracing)")
	traceErrCap := flag.Int("trace-errors", 256, "per-shard retention cap for non-2xx request traces")
	reqTracePath := flag.String("req-traces", "", "write sampled request traces as a Perfetto/Chrome trace file here on shutdown")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar/progress on this extra address")
	progressEvery := flag.Duration("progress-interval", time.Second, "debug endpoint: /progress sampling interval")
	profileDir := flag.String("profile", "", "continuous profiling: rotate labeled CPU/heap profile segments into this directory")
	profileEvery := flag.Duration("profile-interval", obs.DefaultProfileInterval, "profile segment rotation interval")
	flag.Parse()
	if *gbzPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := sched.ParseKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}

	workers := *threads
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Serving always runs with the registry on: request metrics are the
	// service's contract, not an optional extra. +2 shards: the submit path
	// records past the map workers, HTTP handlers round-robin.
	reg := obs.NewRegistry(workers + 2)
	var slow *obs.SlowReads
	if *slowK > 0 {
		slow = obs.NewSlowReads(workers, *slowK)
	}
	var tracer *obs.ReqTracer
	if *traceK > 0 {
		tracer = obs.NewReqTracer(workers, *traceK, *traceErrCap, reg)
	}
	man := obs.NewManifest("giraffed")
	man.AddFlagSet(flag.CommandLine)

	log.Printf("loading substrate from %s", *gbzPath)
	t0 := time.Now()
	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := giraffe.BuildIndexes(f)
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.NewMapperFromIndexes(f, ix.Dist, ix.Bi, core.Options{
		Threads:       workers,
		BatchSize:     *batch,
		CacheCapacity: *capacity,
		EpochCapacity: *epoch,
		Scheduler:     kind,
		Obs:           reg,
		Slow:          slow,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("substrate ready in %v: %d nodes, %d paths", time.Since(t0),
		f.Graph.NumNodes(), f.Graph.NumPaths())

	sess, err := pipeline.NewSession(m, pipeline.Options{
		Workers:   workers,
		BatchSize: *batch,
		Depth:     *depth,
		Scheduler: kind,
	}, reg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Session:         sess,
		Extract:         func(read *dna.Read) (seeds.ReadSeeds, error) { return giraffe.Preprocess(ix.MinIx, read) },
		Reg:             reg,
		Slow:            slow,
		Traces:          tracer,
		PerClient:       *perClient,
		MaxReads:        *maxReads,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		RetryAfter:      *retryAfter,
	})
	if err != nil {
		log.Fatal(err)
	}

	var series *obs.SeriesRecorder
	if *seriesPath != "" {
		series, err = obs.StartSeries(reg, slow, tracer, *seriesPath, *seriesEvery, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	var dbg *obs.DebugServer
	if *debugAddr != "" {
		dbg, err = obs.StartDebugServer(*debugAddr, reg, slow, *progressEvery)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint on http://%s/", dbg.Addr())
	}
	var profiles *obs.ProfileRecorder
	if *profileDir != "" {
		profiles, err = obs.StartProfiles(*profileDir, *profileEvery)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("profiling into %s (rotating every %v)", *profileDir, *profileEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("serving on http://%s/ (%d workers, batch %d, depth %d, per-client %d)",
		ln.Addr(), workers, *batch, sess.Options().Depth, *perClient)

	// Graceful drain: flip /healthz and /map to 503, let in-flight requests
	// finish (bounded by -drain-timeout), drain the mapping pool, then write
	// the manifest so the run is diffable post-hoc.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("signal received, draining (timeout %v)", *drainTimeout)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}
	srv.EnterDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v (continuing)", err)
	}
	sess.Close()
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		log.Printf("serve: %v", serveErr)
	}
	if dbg != nil {
		dbg.Close()
	}
	if series != nil {
		if err := series.Stop(); err != nil {
			log.Fatal(err)
		}
	}
	if profiles != nil {
		if err := profiles.Stop(); err != nil {
			log.Fatal(err)
		}
	}
	if *reqTracePath != "" && tracer != nil {
		tf, err := os.Create(*reqTracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WritePerfettoRequests(tf, tracer.Snapshot()); err != nil {
			tf.Close()
			log.Fatal(err)
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("sampled request traces written to %s", *reqTracePath)
	}
	snap := reg.Snapshot()
	log.Printf("drained: %d requests, %d ok, %d reads mapped, %d queue rejects, %d client rejects, %d deadline expiries",
		snap.Counters[obs.MetricServeHTTPRequests], snap.Counters[obs.MetricServeHTTPOK],
		snap.Counters[obs.MetricServeReads], snap.Counters[obs.MetricServeQueueRejects],
		snap.Counters[obs.MetricServeClientRejects], snap.Counters[obs.MetricServeDeadline])
	if *manifest != "" {
		if err := man.AddWorkload("gbz", *gbzPath); err != nil {
			log.Fatal(err)
		}
		if *seriesPath != "" {
			// obsdiff resolves the archive by basename next to the manifest.
			man.AddResult(*seriesPath)
			man.Notes["series"] = filepath.Base(*seriesPath)
		}
		if *profileDir != "" {
			man.Notes["profiles"] = filepath.Base(*profileDir)
		}
		man.AddSlowReads(slow)
		man.AddReqTraces(tracer)
		if *reqTracePath != "" && tracer != nil {
			man.AddResult(*reqTracePath)
		}
		man.Finish(reg)
		if err := man.Write(*manifest); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "run manifest written to %s\n", *manifest)
	}
}
