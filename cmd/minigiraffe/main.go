// Command minigiraffe is the proxy application: it loads the pangenome
// reference from a .gbz file and the captured reads+seeds from a
// sequence-seeds.bin, runs the two critical functions under the selected
// scheduler, and writes the raw mapping output as CSV — miniGiraffe's
// command-line contract (§V of the paper), with the three tuning parameters
// (-sched, -batch, -capacity) exposed.
//
// Usage:
//
//	minigiraffe -gbz A-human.gbz -seeds A-human-seeds.bin \
//	    -threads 16 -batch 512 -capacity 256 -sched dynamic -out out.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/gbz"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("minigiraffe: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	seedsPath := flag.String("seeds", "", "captured sequence-seeds .bin file (required)")
	threads := flag.Int("threads", 0, "worker threads (0 = all CPUs)")
	batch := flag.Int("batch", 512, "batch size")
	capacity := flag.Int("capacity", 256, "initial CachedGBWT capacity (-1 disables caching)")
	schedName := flag.String("sched", "dynamic", "scheduler: dynamic, work-stealing, static")
	out := flag.String("out", "", "extension CSV output (default stdout)")
	timeline := flag.String("timeline", "", "write the region timeline CSV here")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here")
	flag.Parse()
	if *gbzPath == "" || *seedsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := sched.ParseKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := seeds.ReadFile(*seedsPath)
	if err != nil {
		log.Fatal(err)
	}
	var rec *trace.Recorder
	if *timeline != "" {
		n := *threads
		if n <= 0 {
			n = 64
		}
		rec = trace.NewRecorder(n)
	}
	res, err := core.Run(f, recs, core.Options{
		Threads:       *threads,
		BatchSize:     *batch,
		CacheCapacity: *capacity,
		Scheduler:     kind,
		Trace:         rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := core.WriteCSV(w, recs, res); err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, exts := range res.Extensions {
		total += len(exts)
	}
	fmt.Fprintf(os.Stderr,
		"makespan %v: %d reads, %d extensions, scheduler %s, cache hits %d/%d (%.1f%%), %d rehashes, imbalance %.2f\n",
		res.Makespan, len(recs), total, kind,
		res.Cache.Hits, res.Cache.Accesses,
		100*float64(res.Cache.Hits)/float64(max64(res.Cache.Accesses, 1)),
		res.Cache.Rehashes, res.Sched.Imbalance())

	if *memprofile != "" {
		pf, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(pf); err != nil {
			log.Fatal(err)
		}
		if err := pf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if rec != nil {
		file, err := os.Create(*timeline)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteTimelineCSV(file); err != nil {
			log.Fatal(err)
		}
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
