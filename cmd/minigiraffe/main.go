// Command minigiraffe is the proxy application: it loads the pangenome
// reference from a .gbz file and the captured reads+seeds from a
// sequence-seeds.bin, runs the two critical functions under the selected
// scheduler, and writes the raw mapping output as CSV — miniGiraffe's
// command-line contract (§V of the paper), with the three tuning parameters
// (-sched, -batch, -capacity) exposed.
//
// With -stream, records flow through the streaming pipeline instead of the
// batch scheduler: ingest, mapping, and emit overlap over bounded channels,
// so memory stays proportional to the in-flight window (-depth batches)
// rather than the workload, while the CSV output stays byte-identical to
// batch mode.
//
// With -fastq (instead of -seeds), the proxy needs no captured-seed file at
// all: the giraffe emulator's preprocessing runs inline as the pipeline's
// ingest stage (giraffe.ExtractSource), extracting seeds from the FASTQ
// reads on the fly with bounded lookahead — the paper's capture→proxy loop
// as a single process. -fastq implies -stream.
//
// Usage:
//
//	minigiraffe -gbz A-human.gbz -seeds A-human-seeds.bin \
//	    -threads 16 -batch 512 -capacity 256 -sched dynamic -out out.csv
//	minigiraffe -gbz A-human.gbz -fastq A-human.fq -out out.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("minigiraffe: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	seedsPath := flag.String("seeds", "", "captured sequence-seeds .bin file (this or -fastq required)")
	fastqPath := flag.String("fastq", "", "stream directly from these FASTQ reads, extracting seeds on the fly (implies -stream)")
	threads := flag.Int("threads", 0, "worker threads (0 = all CPUs)")
	batch := flag.Int("batch", 512, "batch size")
	capacity := flag.Int("capacity", 256, "initial CachedGBWT capacity (-1 disables caching); with -epoch, sizes the per-worker overflow layer")
	epoch := flag.Int("epoch", 0, "epoch-published shared cache capacity per GBWT direction (0 = per-batch rebuilds, the paper's discipline)")
	schedName := flag.String("sched", "dynamic", "scheduler: dynamic, work-stealing, static")
	stream := flag.Bool("stream", false, "stream records through the pipeline (bounded memory)")
	depth := flag.Int("depth", 0, "stream mode: max in-flight batches (0 = 2x threads)")
	lookahead := flag.Int("lookahead", 0, "fastq mode: extraction prefetch bound in records (0 = 512)")
	out := flag.String("out", "", "extension CSV output (default stdout)")
	timeline := flag.String("timeline", "", "write the region timeline CSV here")
	perfetto := flag.String("perfetto", "", "write a Perfetto/chrome://tracing trace-event JSON here")
	manifest := flag.String("manifest", "", "run manifest JSON path (default <out>.manifest.json when -out is set; \"off\" disables)")
	obsOn := flag.Bool("obs", false, "enable the metrics registry (kernel/stage histograms, scheduler counters) even without -debug-addr")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar, /metrics, /progress and /slow on this address (e.g. localhost:6060); enables the metrics registry")
	progressEvery := flag.Duration("progress-interval", time.Second, "debug endpoint: /progress sampling interval")
	seriesPath := flag.String("series", "", "archive a delta-encoded metric time-series here (flight recorder; enables the metrics registry)")
	seriesEvery := flag.Duration("series-interval", obs.DefaultSeriesInterval, "series self-scrape interval")
	slowK := flag.Int("slow", 0, "retain the K slowest reads as exemplars (served at /slow, archived in the manifest)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here")
	profileDir := flag.String("profile", "", "continuous profiling: rotate labeled CPU/heap profile segments into this directory (cannot be combined with -cpuprofile)")
	profileEvery := flag.Duration("profile-interval", obs.DefaultProfileInterval, "profile segment rotation interval")
	flag.Parse()
	if *gbzPath == "" || (*seedsPath == "") == (*fastqPath == "") {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := sched.ParseKind(*schedName)
	if err != nil {
		log.Fatal(err)
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var profiles *obs.ProfileRecorder
	if *profileDir != "" {
		var err error
		profiles, err = obs.StartProfiles(*profileDir, *profileEvery)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Observability is default-off: the registry exists only when asked for,
	// and a nil registry keeps every instrumented path timing-free.
	workers := *threads
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var reg *obs.Registry
	if *obsOn || *debugAddr != "" || *seriesPath != "" {
		// +2: the pipeline's ingest and emit stages record into their own
		// shards past the map workers.
		reg = obs.NewRegistry(workers + 2)
	}
	// The slow-read reservoir is independent of the registry: -slow alone
	// captures exemplars into the manifest with zero registry overhead.
	var slow *obs.SlowReads
	if *slowK > 0 {
		slow = obs.NewSlowReads(workers, *slowK)
	}
	var dbg *obs.DebugServer
	if *debugAddr != "" {
		var err error
		dbg, err = obs.StartDebugServer(*debugAddr, reg, slow, *progressEvery)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/\n", dbg.Addr())
	}
	var series *obs.SeriesRecorder
	if *seriesPath != "" {
		var err error
		series, err = obs.StartSeries(reg, slow, nil, *seriesPath, *seriesEvery, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	man := obs.NewManifest("minigiraffe")
	man.AddFlagSet(flag.CommandLine)
	manifestPath := *manifest
	if manifestPath == "" && *out != "" {
		manifestPath = *out + ".manifest.json"
	}
	if manifestPath == "off" {
		manifestPath = ""
	}

	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	var rec *trace.Recorder
	if *timeline != "" || *perfetto != "" {
		n := *threads
		if n <= 0 {
			n = 64
		}
		rec = trace.NewRecorder(n)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}

	opts := core.Options{
		Threads:       *threads,
		BatchSize:     *batch,
		CacheCapacity: *capacity,
		EpochCapacity: *epoch,
		Scheduler:     kind,
		Trace:         rec,
		Obs:           reg,
		Slow:          slow,
	}
	switch {
	case *fastqPath != "":
		runStreamFromFASTQ(f, *fastqPath, w, opts, *depth, *lookahead)
	case *stream:
		runStream(f, *seedsPath, w, opts, *depth)
	default:
		runBatch(f, *seedsPath, w, opts)
	}

	if series != nil {
		// Stop before the manifest so the archive's final sample reflects the
		// whole run; a failed flight recorder fails the run loudly.
		if err := series.Stop(); err != nil {
			log.Fatal(err)
		}
	}
	if profiles != nil {
		// Same discipline as the series: a capture that failed mid-run fails
		// the run, instead of committing a silently truncated profile.
		if err := profiles.Stop(); err != nil {
			log.Fatal(err)
		}
	}

	if *memprofile != "" {
		pf, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(pf); err != nil {
			log.Fatal(err)
		}
		if err := pf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if rec != nil && *timeline != "" {
		file, err := os.Create(*timeline)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteTimelineCSV(file); err != nil {
			log.Fatal(err)
		}
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *perfetto != "" {
		file, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WritePerfettoTrace(file, rec); err != nil {
			log.Fatal(err)
		}
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if manifestPath != "" {
		// Workload hashing happens after the run so it never competes with
		// mapping for I/O bandwidth.
		if err := man.AddWorkload("gbz", *gbzPath); err != nil {
			log.Fatal(err)
		}
		input, label := *seedsPath, "seeds"
		if *fastqPath != "" {
			input, label = *fastqPath, "fastq"
		}
		if err := man.AddWorkload(label, input); err != nil {
			log.Fatal(err)
		}
		for _, p := range []string{*out, *timeline, *perfetto, *seriesPath} {
			if p != "" {
				man.AddResult(p)
			}
		}
		if *seriesPath != "" {
			// obsdiff resolves the archive by basename next to the manifest.
			man.Notes["series"] = filepath.Base(*seriesPath)
		}
		if *profileDir != "" {
			man.Notes["profiles"] = filepath.Base(*profileDir)
		}
		man.AddSlowReads(slow)
		man.Finish(reg)
		if err := man.Write(manifestPath); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "run manifest written to %s\n", manifestPath)
	}
}

// runBatch is the paper's batch proxy: materialize the workload, map it all
// at once, write the CSV.
func runBatch(f *gbz.File, seedsPath string, w *os.File, opts core.Options) {
	recs, err := seeds.ReadFile(seedsPath)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(f, recs, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.WriteCSV(w, recs, res); err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, exts := range res.Extensions {
		total += len(exts)
	}
	fmt.Fprintf(os.Stderr,
		"makespan %v: %d reads, %d extensions, scheduler %s, cache hits %d/%d (%.1f%%, %d shared), %d rehashes, imbalance %.2f\n",
		res.Makespan, len(recs), total, opts.Scheduler,
		res.Cache.TotalHits(), res.Cache.Accesses,
		100*float64(res.Cache.TotalHits())/float64(max64(res.Cache.Accesses, 1)),
		res.Cache.SharedHits, res.Cache.Rehashes, res.Sched.Imbalance())
}

// runStream maps the capture file through the streaming pipeline without
// ever materializing it.
func runStream(f *gbz.File, seedsPath string, w *os.File, opts core.Options, depth int) {
	m, err := core.NewMapper(f, opts)
	if err != nil {
		log.Fatal(err)
	}
	src, err := seeds.Open(seedsPath)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	runPipeline(m, src, w, opts, depth)
}

// runStreamFromFASTQ completes the capture→proxy loop in one process: the
// emulator's preprocessing feeds the pipeline directly from FASTQ, with no
// captured-seed file on disk.
func runStreamFromFASTQ(f *gbz.File, fastqPath string, w *os.File, opts core.Options, depth, lookahead int) {
	ix, err := giraffe.BuildIndexes(f)
	if err != nil {
		log.Fatal(err)
	}
	// Reuse the emulator's indexes instead of rebuilding them for the proxy.
	m, err := core.NewMapperFromIndexes(f, ix.Dist, ix.Bi, opts)
	if err != nil {
		log.Fatal(err)
	}
	src, err := giraffe.OpenExtractSourceObs(ix.MinIx, fastqPath, lookahead, opts.Obs)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	runPipeline(m, src, w, opts, depth)
}

func runPipeline(m *core.Mapper, src pipeline.Source, w *os.File, opts core.Options, depth int) {
	st, err := pipeline.RunToCSV(m, src, w, pipeline.Options{
		Workers:   opts.Threads,
		BatchSize: opts.BatchSize,
		Depth:     depth,
		Scheduler: opts.Scheduler,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"streamed %d reads in %d batches in %v (%.0f reads/s), scheduler %s, cache hits %d/%d (%.1f%%, %d shared), %d rehashes, %d steals, imbalance %.2f, batch latency mean %.2fms max %.2fms, ingest mean %.2fms\n",
		st.Reads, st.Batches, st.Makespan, st.Throughput(), opts.Scheduler,
		st.Cache.TotalHits(), st.Cache.Accesses,
		100*float64(st.Cache.TotalHits())/float64(max64(st.Cache.Accesses, 1)),
		st.Cache.SharedHits, st.Cache.Rehashes, st.Sched.Steals, st.Sched.Imbalance(),
		1000*st.BatchLatency.Mean, 1000*st.BatchLatency.Max, 1000*st.IngestLatency.Mean)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
