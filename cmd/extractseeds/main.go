// Command extractseeds performs Giraffe's preprocessing only — minimizer
// lookup and seed creation — and writes the result as the proxy's
// sequence-seeds.bin. This is the capture step of §V: the proxy's inputs
// are extracted from the parent right before the critical functions run.
//
// Both modes run the same giraffe.Preprocess per read. The default mode
// materializes the workload and writes the count-up-front v1 format; with
// -stream, records flow from the FASTQ scanner through the count-free v2
// stream writer one at a time, so capture memory no longer scales with the
// workload.
//
// Usage:
//
//	extractseeds -gbz A-human.gbz -reads A-human.fq -out A-human-seeds.bin
//	extractseeds -gbz A-human.gbz -reads A-human.fq -stream -out A-human-seeds.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fastq"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/seeds"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("extractseeds: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	readsPath := flag.String("reads", "", "FASTQ reads (required)")
	out := flag.String("out", "sequence-seeds.bin", "output .bin file")
	stream := flag.Bool("stream", false, "stream extraction record by record (v2 capture format, bounded memory)")
	flag.Parse()
	if *gbzPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := giraffe.BuildIndexes(f)
	if err != nil {
		log.Fatal(err)
	}

	if *stream {
		in, err := os.Open(*readsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer in.Close()
		outFile, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		st, err := giraffe.CaptureSeeds(ix.MinIx, in, outFile)
		if err != nil {
			outFile.Close()
			log.Fatal(err)
		}
		if err := outFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("streamed %d seeds from %d reads -> %s\n", st.TotalSeeds, st.Reads, *out)
		return
	}

	reads, err := fastq.ReadFile(*readsPath)
	if err != nil {
		log.Fatal(err)
	}
	recs := make([]seeds.ReadSeeds, len(reads))
	totalSeeds := 0
	for i := range reads {
		rec, err := giraffe.Preprocess(ix.MinIx, &reads[i])
		if err != nil {
			log.Fatal(err)
		}
		recs[i] = rec
		totalSeeds += len(rec.Seeds)
	}
	if err := seeds.WriteFile(*out, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d seeds from %d reads -> %s\n", totalSeeds, len(reads), *out)
}
