// Command extractseeds performs Giraffe's preprocessing only — minimizer
// lookup and seed creation — and writes the result as the proxy's
// sequence-seeds.bin. This is the capture step of §V: the proxy's inputs
// are extracted from the parent right before the critical functions run.
//
// Usage:
//
//	extractseeds -gbz A-human.gbz -reads A-human.fq -out A-human-seeds.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fastq"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/seeds"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("extractseeds: ")
	gbzPath := flag.String("gbz", "", "pangenome .gbz file (required)")
	readsPath := flag.String("reads", "", "FASTQ reads (required)")
	out := flag.String("out", "sequence-seeds.bin", "output .bin file")
	flag.Parse()
	if *gbzPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := gbz.Load(*gbzPath)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := fastq.ReadFile(*readsPath)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := giraffe.BuildIndexes(f)
	if err != nil {
		log.Fatal(err)
	}
	recs := make([]seeds.ReadSeeds, len(reads))
	totalSeeds := 0
	for i := range reads {
		ss, err := seeds.Extract(ix.MinIx, &reads[i])
		if err != nil {
			log.Fatalf("read %s: %v", reads[i].Name, err)
		}
		recs[i] = seeds.ReadSeeds{Read: reads[i], Seeds: ss}
		totalSeeds += len(ss)
	}
	if err := seeds.WriteFile(*out, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d seeds from %d reads -> %s\n", totalSeeds, len(reads), *out)
}
