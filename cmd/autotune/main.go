// Command autotune reproduces the §VII-B autotuning case study: the
// CachedGBWT capacity sweep (Figure 6), the exhaustive tuning cross-product
// with best-vs-default comparison (Figure 7) and winning parameters
// (Table VIII), the D-HPRC-on-chi-intel heat map (Figure 8), and the
// per-factor ANOVA.
//
// Usage:
//
//	autotune -scale 1.0                     # the full study
//	autotune -experiment figure6            # one experiment
//	autotune -experiment figure8 -heatmap heatmap.csv
package main

import (
	"flag"
	"io"
	"log"
	"os"

	"repro/internal/autotune"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autotune: ")
	scale := flag.Float64("scale", 1.0, "read-count scale factor")
	threads := flag.Int("threads", 0, "local measurement threads (0 = all CPUs)")
	repeats := flag.Int("repeats", 1, "repeats per combo")
	experiment := flag.String("experiment", "all", "figure6, figure7, figure8, or all")
	heatmap := flag.String("heatmap", "", "write the Figure 8 heat map CSV here")
	manifest := flag.String("manifest", "autotune-manifest.json", "run manifest JSON path (\"off\" disables)")
	flag.Parse()

	s := experiments.NewSuite(experiments.Config{
		Scale: *scale, Threads: *threads, Repeats: *repeats, Out: os.Stdout,
	})
	man := obs.NewManifest("autotune")
	man.AddFlagSet(flag.CommandLine)
	space := autotune.DefaultSpace()
	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		man.Notes["ran_"+name] = "true"
	}
	run("figure6", func() error { _, err := s.Figure6(); return err })
	run("figure7", func() error { _, err := s.Figure7AndTable8(space); return err })
	run("figure8", func() error {
		var w io.Writer
		if *heatmap != "" {
			file, err := os.Create(*heatmap)
			if err != nil {
				return err
			}
			defer file.Close()
			w = file
		}
		_, err := s.Figure8(space, w)
		return err
	})
	if *manifest != "off" && *manifest != "" {
		if *heatmap != "" {
			man.AddResult(*heatmap)
		}
		man.Finish(nil)
		if err := man.Write(*manifest); err != nil {
			log.Fatal(err)
		}
	}
}
