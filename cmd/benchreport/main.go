// Command benchreport regenerates every table and figure of the paper's
// evaluation in one run: Tables I, IV, V, VI, VII, VIII and Figures 2-8,
// plus the §VI-a functional validation, the §VII-B ANOVA, and the streaming
// ingest comparison (batch vs capture-file vs fastq-stream makespans). Raw
// CSV artefacts (timeline, heat map) are written to -outdir.
//
// Usage:
//
//	benchreport -scale 1.0 -outdir results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/autotune"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	scale := flag.Float64("scale", 1.0, "read-count scale factor")
	threads := flag.Int("threads", 0, "local measurement threads (0 = all CPUs)")
	repeats := flag.Int("repeats", 1, "repeats per measured point")
	outdir := flag.String("outdir", "results", "directory for CSV artefacts")
	only := flag.String("only", "", "run a single experiment (table1, figure2, ... anova)")
	manifest := flag.String("manifest", "", "run manifest JSON path (default <outdir>/run-manifest.json; \"off\" disables)")
	seriesPath := flag.String("series", "", "archive a delta-encoded metric time-series here (flight recorder; enables the metrics registry)")
	seriesEvery := flag.Duration("series-interval", obs.DefaultSeriesInterval, "series self-scrape interval")
	profileDir := flag.String("profile", "", "continuous profiling: rotate labeled CPU/heap profile segments into this directory")
	profileEvery := flag.Duration("profile-interval", obs.DefaultProfileInterval, "profile segment rotation interval")
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}
	man := obs.NewManifest("benchreport")
	man.AddFlagSet(flag.CommandLine)
	manifestPath := *manifest
	if manifestPath == "" {
		manifestPath = filepath.Join(*outdir, "run-manifest.json")
	}
	if manifestPath == "off" {
		manifestPath = ""
	}
	var reg *obs.Registry
	var series *obs.SeriesRecorder
	if *seriesPath != "" {
		reg = obs.NewRegistry(suiteShards(*threads))
		var err error
		series, err = obs.StartSeries(reg, nil, nil, *seriesPath, *seriesEvery, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	var profiles *obs.ProfileRecorder
	if *profileDir != "" {
		var err error
		profiles, err = obs.StartProfiles(*profileDir, *profileEvery)
		if err != nil {
			log.Fatal(err)
		}
	}
	s := experiments.NewSuite(experiments.Config{
		Scale: *scale, Threads: *threads, Repeats: *repeats, Out: os.Stdout, Obs: reg,
	})
	space := autotune.DefaultSpace()

	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"table1", func() error { _, err := s.Table1(""); return err }},
		{"validation", func() error { _, err := s.FunctionalValidationAll(); return err }},
		{"streaming", func() error { _, err := s.StreamingComparison(); return err }},
		{"figure2", func() error {
			f, err := os.Create(filepath.Join(*outdir, "figure2-timeline.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			rec, err := s.Figure2(f)
			if err != nil {
				return err
			}
			svg, err := os.Create(filepath.Join(*outdir, "figure2.svg"))
			if err != nil {
				return err
			}
			defer svg.Close()
			return plot.WriteTimelineSVG(svg, rec, "Figure 2: Giraffe 16-thread timeline (A-human)")
		}},
		{"figure3", func() error { _, err := s.Figure3(); return err }},
		{"figure4", func() error { _, err := s.Figure4(nil); return err }},
		{"table4", func() error { _, err := s.Table4(); return err }},
		{"table5", func() error { _, err := s.Table5(); return err }},
		{"table6", func() error { _, err := s.Table6(); return err }},
		{"figure5", func() error {
			points, err := s.Figure5()
			if err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outdir, "figure5.svg"))
			if err != nil {
				return err
			}
			defer f.Close()
			return experiments.Figure5SVG(points, "B-yeast", f)
		}},
		{"table7", func() error { _, err := s.Table7(); return err }},
		{"figure6", func() error {
			points, err := s.Figure6()
			if err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outdir, "figure6.svg"))
			if err != nil {
				return err
			}
			defer f.Close()
			return experiments.Figure6SVG(points, f)
		}},
		{"figure7", func() error {
			cells, err := s.Figure7AndTable8(space)
			if err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outdir, "figure7.svg"))
			if err != nil {
				return err
			}
			defer f.Close()
			return experiments.Figure7SVG(cells, f)
		}},
		{"figure8", func() error {
			f, err := os.Create(filepath.Join(*outdir, "figure8-heatmap.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = s.Figure8(space, f)
			return err
		}},
	}
	start := time.Now()
	for _, st := range steps {
		if *only != "" && *only != st.name {
			continue
		}
		t0 := time.Now()
		if err := st.fn(); err != nil {
			log.Fatalf("%s: %v", st.name, err)
		}
		elapsed := time.Since(t0).Round(time.Millisecond)
		man.Notes["step_"+st.name] = elapsed.String()
		fmt.Printf("[%s done in %v]\n", st.name, elapsed)
	}
	if series != nil {
		if err := series.Stop(); err != nil {
			log.Fatal(err)
		}
	}
	if profiles != nil {
		if err := profiles.Stop(); err != nil {
			log.Fatal(err)
		}
	}
	if manifestPath != "" {
		entries, err := os.ReadDir(*outdir)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() && e.Name() != filepath.Base(manifestPath) {
				man.AddResult(filepath.Join(*outdir, e.Name()))
			}
		}
		if *seriesPath != "" {
			man.AddResult(*seriesPath)
			man.Notes["series"] = filepath.Base(*seriesPath)
		}
		if *profileDir != "" {
			man.Notes["profiles"] = filepath.Base(*profileDir)
		}
		man.Finish(reg)
		if err := man.Write(manifestPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run manifest written to %s\n", manifestPath)
	}
	fmt.Printf("\nbenchreport complete in %v; CSV artefacts in %s/\n",
		time.Since(start).Round(time.Millisecond), *outdir)
}

// suiteShards sizes the registry for the measurement worker count plus the
// streaming comparison's ingest/emit stages.
func suiteShards(threads int) int {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return threads + 2
}
