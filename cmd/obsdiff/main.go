// Command obsdiff is the cross-run perf regression gate: it loads two
// recorded runs (run manifest plus the optional archived metric series),
// aligns them by metric name, and reports throughput and tail-latency deltas
// per stage and kernel as a markdown report. The exit status is the verdict,
// so CI can diff a bench-smoke run against the checked-in baseline and fail
// the build on a regression past the noise thresholds.
//
// Usage:
//
//	obsdiff -baseline results/baseline -candidate obs-smoke -report perfdiff.md
//
// Exit status: 0 = within thresholds, 1 = regression, 2 = usage or load
// error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsdiff: ")
	baseline := flag.String("baseline", "", "baseline run: manifest file or directory containing one (required)")
	candidate := flag.String("candidate", "", "candidate run: manifest file or directory containing one (required)")
	report := flag.String("report", "", "write the markdown report here (default stdout)")
	reportOnly := flag.Bool("report-only", false, "always exit 0: report regressions without failing")
	p99Rise := flag.Float64("p99-threshold", 0, "fractional p99 rise that fails (default 0.25 = +25%)")
	thrDrop := flag.Float64("throughput-threshold", 0, "fractional reads/s drop that fails (default 0.15 = -15%)")
	minCount := flag.Int64("min-count", 0, "ignore histograms with fewer observations in either run (default 100)")
	minP99 := flag.Float64("min-p99", 0, "ignore candidate p99s below this many seconds (default 1e-4)")
	allowMissing := flag.Bool("allow-missing-baseline", false, "exit 0 with a notice when the baseline does not exist yet")
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := obs.LoadRun(*baseline)
	if err != nil {
		if *allowMissing && os.IsNotExist(err) {
			fmt.Printf("obsdiff: no baseline at %s; nothing to compare (record one with `make perfdiff` or commit results/baseline)\n", *baseline)
			return
		}
		log.Print(err)
		os.Exit(2)
	}
	cand, err := obs.LoadRun(*candidate)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	r := obs.Diff(base, cand, obs.DiffOptions{
		P99Rise:        *p99Rise,
		ThroughputDrop: *thrDrop,
		MinCount:       *minCount,
		MinP99Seconds:  *minP99,
	})

	w := os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := r.WriteMarkdown(w); err != nil {
		log.Print(err)
		os.Exit(2)
	}

	if r.Regressed() {
		fmt.Fprintln(os.Stderr, "obsdiff: REGRESSED (see report)")
		if !*reportOnly {
			os.Exit(1)
		}
	}
}
