# Single entry point shared by CI (.github/workflows/ci.yml) and local runs,
# so "works on my machine" and "works in CI" are the same command.
GO ?= go

.PHONY: build vet fmt-check test verify race bench-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# verify is the repo's tier-1 gate (see ROADMAP.md).
verify: build test

# The heavily concurrent packages run under the race detector.
race:
	$(GO) test -race ./internal/sched/... ./internal/pipeline/... ./internal/core/...

# Compile-and-run every benchmark once so kernel benchmarks can't rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: verify vet fmt-check race bench-smoke
