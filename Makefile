# Single entry point shared by CI (.github/workflows/ci.yml) and local runs,
# so "works on my machine" and "works in CI" are the same command.
GO ?= go

# Pinned third-party checker versions (the CI lint job installs exactly
# these; locally, staticcheck/govulncheck are skipped when not installed).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build vet fmt-check test verify race bench-smoke fuzz-smoke serve-smoke lint escapecheck staticcheck govulncheck perfdiff pgo-capture pgo-verify ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# verify is the repo's tier-1 gate (see ROADMAP.md).
verify: build test

# The heavily concurrent packages run under the race detector. The giraffe
# emulator and trace recorder ride along in -short mode (their slowest
# single-threaded tests are skipped; the multi-threaded ones still run) —
# that includes the streaming extraction path (ExtractSource prefetcher and
# its differential harness) plus the fastq/seeds readers feeding it. The obs
# registry is scraped concurrently with recording, so it runs here too, and
# so does the serving stack (pipeline.Session lives in internal/pipeline;
# internal/serve layers concurrent HTTP admission/deadline/drain on top).
# internal/gbwt joins for the epoch-published shared cache (lock-free
# snapshot readers racing the builder's republish); internal/workload rides
# along for the zipf sampler feeding those stress tests.
race:
	$(GO) test -race ./internal/sched/... ./internal/pipeline/... ./internal/core/... ./internal/trace/... ./internal/fastq/... ./internal/seeds/... ./internal/obs/... ./internal/serve/... ./internal/gbwt/... ./internal/workload/...
	$(GO) test -race -short ./internal/giraffe/...

# Compile-and-run every benchmark once so kernel benchmarks can't rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Short native-fuzz runs over the two untrusted input surfaces (the capture
# binary format and FASTQ). The checked-in corpora under testdata/fuzz seed
# the mutation; 10 seconds each is a smoke test, not a campaign.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadSeeds -fuzztime=10s ./internal/seeds
	$(GO) test -run='^$$' -fuzz=FuzzFASTQ -fuzztime=10s ./internal/fastq

# serve-smoke boots cmd/giraffed against a generated workload and drives it
# with cmd/loadgen through three phases (steady 2xx, queue-full 429s,
# deadline 504s), then asserts a graceful SIGTERM drain. Artifacts land in
# SMOKE_DIR (default serve-smoke/) for CI upload.
serve-smoke:
	sh scripts/serve_smoke.sh

# lint runs the project-specific analyzers (atomicmix, cachepow2, ctxflow,
# escapebudget, hotalloc, hotpath, metricname, nakedgoroutine, probeexclusive,
# tracepair) over the whole tree. Zero findings required. LINT_REPORT_DIR
# archives vetgiraffe.txt and escapes_diff.txt for CI artifact upload.
LINT_REPORT_DIR ?= lint-report
lint:
	$(GO) run ./cmd/vetgiraffe -reportdir $(LINT_REPORT_DIR) ./...

# escapecheck runs only the compiler escape/inline budget gate. UPDATE=1
# rewrites results/escapes_baseline.txt from the current compiler verdicts
# instead of diffing against it — run after deliberate hot-path changes and
# commit the refreshed baseline with them.
escapecheck:
ifeq ($(UPDATE),1)
	$(GO) run ./cmd/vetgiraffe -update-escapes ./...
else
	$(GO) run ./cmd/vetgiraffe -only escapebudget ./...
endif

# staticcheck/govulncheck run when the pinned binaries are on PATH (the CI
# lint job installs them); locally they skip with a hint rather than fail,
# so `make ci` works offline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# perfdiff replays the bench-smoke workload locally (flight recorder and
# continuous profiler on), then diffs the fresh run against the checked-in
# baseline under results/baseline twice: cmd/obsdiff compares the metric
# series (did the run get slower?), cmd/profdiff aligns the CPU profiles by
# symbol (which function is to blame?). Either exits non-zero when its gate
# trips. Override OBSDIFF_FLAGS / PROFDIFF_FLAGS to tune thresholds (e.g.
# OBSDIFF_FLAGS='-p99-threshold 0.5') and PERFDIFF_DIR to keep runs. The
# profdiff gate defaults to the same loose ±10pt thresholds CI enforces:
# a ~1s capture holds ~100 samples, so GC-timing noise alone moves small
# functions a few points between runs of identical code.
# A second leg replays the skewed (-zipf 1.4) workload with the epoch cache
# on (-epoch 512, halved private overflow) against results/baseline-zipf —
# the same workload under the per-batch rebuild discipline, recorded with
# the same 128-read batches so several epochs publish within the run. The
# report shows the shared-snapshot win: most lookups land in the snapshot
# (mapper_epoch_shared_hits_total) with no cache-build or throughput cost.
PERFDIFF_DIR ?= perfdiff-run
OBSDIFF_FLAGS ?=
PROFDIFF_FLAGS ?= -share-rise 0.10 -min-share 0.10
perfdiff:
	mkdir -p $(PERFDIFF_DIR)
	$(GO) run ./cmd/genworkload -input A-human -scale 20 -outdir $(PERFDIFF_DIR)
	$(GO) run ./cmd/minigiraffe -gbz $(PERFDIFF_DIR)/A-human.gbz \
		-seeds $(PERFDIFF_DIR)/A-human-seeds.bin -threads 4 -stream \
		-obs -slow 16 -out $(PERFDIFF_DIR)/out.csv \
		-series $(PERFDIFF_DIR)/run.series \
		-profile $(PERFDIFF_DIR)/profiles \
		-manifest $(PERFDIFF_DIR)/run-manifest.json
	$(GO) run ./cmd/obsdiff -baseline results/baseline -candidate $(PERFDIFF_DIR) \
		-report $(PERFDIFF_DIR)/perfdiff.md $(OBSDIFF_FLAGS)
	$(GO) run ./cmd/profdiff -baseline results/baseline/profiles \
		-candidate $(PERFDIFF_DIR)/profiles -allow-missing-baseline \
		-report $(PERFDIFF_DIR)/profdiff.md $(PROFDIFF_FLAGS)
	@echo "reports: $(PERFDIFF_DIR)/perfdiff.md $(PERFDIFF_DIR)/profdiff.md"
	mkdir -p $(PERFDIFF_DIR)/zipf
	$(GO) run ./cmd/genworkload -input A-human -scale 20 -zipf 1.4 -outdir $(PERFDIFF_DIR)/zipf
	$(GO) run ./cmd/minigiraffe -gbz $(PERFDIFF_DIR)/zipf/A-human.gbz \
		-seeds $(PERFDIFF_DIR)/zipf/A-human-seeds.bin -threads 4 -stream \
		-batch 128 -capacity 128 -epoch 512 -obs -slow 16 \
		-out $(PERFDIFF_DIR)/zipf/out.csv \
		-series $(PERFDIFF_DIR)/zipf/run.series \
		-profile $(PERFDIFF_DIR)/zipf/profiles \
		-manifest $(PERFDIFF_DIR)/zipf/run-manifest.json
	$(GO) run ./cmd/obsdiff -baseline results/baseline-zipf -candidate $(PERFDIFF_DIR)/zipf \
		-report $(PERFDIFF_DIR)/zipf/perfdiff.md $(OBSDIFF_FLAGS)
	$(GO) run ./cmd/profdiff -baseline results/baseline-zipf/profiles \
		-candidate $(PERFDIFF_DIR)/zipf/profiles -allow-missing-baseline \
		-report $(PERFDIFF_DIR)/zipf/profdiff.md $(PROFDIFF_FLAGS)
	@echo "reports: $(PERFDIFF_DIR)/zipf/perfdiff.md $(PERFDIFF_DIR)/zipf/profdiff.md"

# pgo-capture distills a representative capture into the committed
# default.pgo: the perfdiff workload runs with the continuous profiler on,
# then `profdiff -merge` sums the rotated CPU segments (and any baseline
# segments already checked in) into one profile the compiler reads with
# `go build -pgo=default.pgo`. Commit the refreshed default.pgo after
# deliberate hot-path changes; pgo-verify proves the committed profile
# still drives a clean build.
PGO_DIR ?= pgo-run
pgo-capture:
	mkdir -p $(PGO_DIR)
	$(GO) run ./cmd/genworkload -input A-human -scale 20 -outdir $(PGO_DIR)
	$(GO) run ./cmd/minigiraffe -gbz $(PGO_DIR)/A-human.gbz \
		-seeds $(PGO_DIR)/A-human-seeds.bin -threads 4 -stream \
		-obs -out $(PGO_DIR)/out.csv \
		-profile $(PGO_DIR)/profiles \
		-manifest $(PGO_DIR)/run-manifest.json
	$(GO) run ./cmd/profdiff -merge -o default.pgo $(PGO_DIR)/profiles
	$(MAKE) pgo-verify

pgo-verify:
	$(GO) build -pgo=default.pgo ./...
	@echo "pgo: default.pgo drives a clean build"

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

ci: verify vet fmt-check lint staticcheck govulncheck race bench-smoke fuzz-smoke serve-smoke
