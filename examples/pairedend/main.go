// Pairedend: the paired-end HPRC-style workflow — generate a C-HPRC-like
// input set, map both ends of every fragment, and check pair consistency:
// the two ends should land on opposite strands at roughly the fragment
// length apart on the backbone, which is how real pipelines sanity-check
// paired mappings.
//
//	go run ./examples/pairedend
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/distindex"
	"repro/internal/extend"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := workload.CHPRC().Scaled(0.2)
	fmt.Printf("generating %s: %d paired-end reads (%d fragments of %d bp)\n",
		spec.Name, spec.Reads, spec.Reads/2, spec.FragmentLen)
	bundle, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	records, err := bundle.CaptureSeeds()
	if err != nil {
		return err
	}
	res, err := core.Run(bundle.GBZ(), records, core.Options{Threads: 4, BatchSize: 64})
	if err != nil {
		return err
	}
	fmt.Printf("mapped %d reads in %v\n", len(records), res.Makespan)

	// Pair consistency: opposite strands, backbone gap near the fragment
	// length.
	dist := distindex.New(bundle.Pangenome.Graph)
	best := func(exts []extend.Extension) *extend.Extension {
		if len(exts) == 0 {
			return nil
		}
		return &exts[0]
	}
	pairs, consistent := 0, 0
	var gapSum float64
	for i := 0; i+1 < len(records); i += 2 {
		e1 := best(res.Extensions[i])
		e2 := best(res.Extensions[i+1])
		if e1 == nil || e2 == nil {
			continue
		}
		pairs++
		if e1.Rev == e2.Rev {
			continue // ends must map to opposite strands
		}
		gap := dist.BackboneDistance(e1.StartPos, e2.StartPos)
		gapSum += float64(gap)
		if gap > spec.FragmentLen/2 && gap < spec.FragmentLen*2 {
			consistent++
		}
	}
	fmt.Printf("pairs with both ends mapped: %d\n", pairs)
	fmt.Printf("strand+distance consistent:  %d (%.1f%%), mean backbone gap %.0f bp (fragment %d)\n",
		consistent, 100*float64(consistent)/float64(pairs), gapSum/float64(pairs), spec.FragmentLen)
	if float64(consistent) < 0.8*float64(pairs) {
		return fmt.Errorf("pair consistency too low")
	}
	return nil
}
