// Graphtools: the graph-interchange surface — build a pangenome, save and
// reload it through the GBZ container, decompose it into snarls, export it
// as GFA, reimport the GFA, and verify everything round-trips. This is the
// workflow for moving this reproduction's graphs into and out of standard
// pangenomics tooling.
//
//	go run ./examples/graphtools
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/gbz"
	"repro/internal/snarl"
	"repro/internal/vgraph"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bundle, err := workload.Generate(workload.BYeast().Scaled(0.02))
	if err != nil {
		return err
	}
	g := bundle.Pangenome.Graph
	fmt.Printf("built %s pangenome: %d nodes, %d edges, %d haplotypes\n",
		bundle.Spec.Name, g.NumNodes(), g.NumEdges(), g.NumPaths())

	// GBZ round trip through a temporary file.
	dir, err := os.MkdirTemp("", "graphtools")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	gbzPath := filepath.Join(dir, "graph.gbz")
	if err := gbz.Save(gbzPath, bundle.GBZ()); err != nil {
		return err
	}
	loaded, err := gbz.Load(gbzPath)
	if err != nil {
		return err
	}
	info, err := os.Stat(gbzPath)
	if err != nil {
		return err
	}
	fmt.Printf("GBZ: %d bytes on disk (deflated), %d GBWT paths reload cleanly\n",
		info.Size(), loaded.Index.NumPaths())

	// Snarl decomposition.
	tree, err := snarl.Decompose(loaded.Graph)
	if err != nil {
		return err
	}
	widest := snarl.Link{}
	for _, l := range tree.Links() {
		if l.Max > widest.Max {
			widest = l
		}
	}
	fmt.Printf("snarls: %d bubbles on a %d-boundary chain; widest interior %d bp (nodes %d..%d)\n",
		tree.NumSnarls(), len(tree.Boundaries()), widest.Max, widest.From, widest.To)

	// Exact distance between two haplotype positions via the snarl chain.
	path := loaded.Graph.Path(0)
	a := vgraph.Position{Node: path[2], Off: 1}
	b := vgraph.Position{Node: path[10], Off: 0}
	fmt.Printf("min graph distance %v → %v: %d bp\n", a, b, tree.MinDistance(a, b))

	// GFA export + reimport.
	var gfa bytes.Buffer
	if err := loaded.Graph.WriteGFA(&gfa); err != nil {
		return err
	}
	again, err := vgraph.ReadGFA(bytes.NewReader(gfa.Bytes()))
	if err != nil {
		return err
	}
	ok := again.NumNodes() == g.NumNodes() &&
		again.NumEdges() == g.NumEdges() &&
		again.NumPaths() == g.NumPaths()
	fmt.Printf("GFA: %d bytes; reimport matches original: %v\n", gfa.Len(), ok)
	if !ok {
		return fmt.Errorf("GFA round trip mismatch")
	}
	return nil
}
