// Tuningstudy: a miniature version of the paper's §VII-B autotuning case
// study — sweep the scheduler × batch size × CachedGBWT capacity
// cross-product on one input set, report the best configuration against the
// Giraffe defaults, and run the per-factor ANOVA.
//
//	go run ./examples/tuningstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/autotune"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := workload.AHuman()
	bundle, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	records, err := bundle.CaptureSeeds()
	if err != nil {
		return err
	}
	space := autotune.Space{
		Schedulers: []sched.Kind{sched.Dynamic, sched.WorkStealing},
		BatchSizes: []int{128, 512, 2048},
		Capacities: []int{64, 256, 1024, 4096},
	}
	fmt.Printf("sweeping %d parameter combinations on %s (%d reads)...\n",
		len(space.Combos()), spec.Name, len(records))
	grid, err := autotune.RunGrid(bundle.GBZ(), records, 4, space, 2, func(done, total int, m autotune.Measurement) {
		fmt.Printf("  [%2d/%2d] %-32s %12v (%d rehashes)\n", done, total, m.Combo, m.Makespan, m.Cache.Rehashes)
	})
	if err != nil {
		return err
	}
	grid.Input = spec.Name

	best, err := grid.Best()
	if err != nil {
		return err
	}
	def, err := grid.Default()
	if err != nil {
		return err
	}
	speedup, err := grid.Speedup()
	if err != nil {
		return err
	}
	fmt.Printf("\ndefault %s: %v\nbest    %s: %v\nlocal speedup from tuning: %.2fx\n",
		def.Combo, def.Makespan, best.Combo, best.Makespan, speedup)

	anova, err := grid.ANOVAByFactor()
	if err != nil {
		return err
	}
	fmt.Println("\nANOVA (which parameter matters?):")
	for _, factor := range []string{"capacity", "batch", "scheduler"} {
		a := anova[factor]
		marker := ""
		if a.P < 0.05 {
			marker = "  <- significant"
		}
		fmt.Printf("  %-10s F=%7.3f p=%.3f%s\n", factor, a.F, a.P, marker)
	}
	return nil
}
