// Quickstart: build a small pangenome by hand, index its haplotypes in a
// GBWT, extract seeds for a read, and run the miniGiraffe kernels on it —
// the whole public API surface in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/gbwt"
	"repro/internal/gbz"
	"repro/internal/minimizer"
	"repro/internal/seeds"
	"repro/internal/vgraph"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
	_ = os.Stdout
}

func run() error {
	// 1. A linear reference plus three variants make a pangenome graph.
	rng := rand.New(rand.NewSource(42))
	ref := make(dna.Sequence, 2000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	variants := []vgraph.Variant{
		{Pos: 400, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[400] + 1) & 3}},
		{Pos: 900, Kind: vgraph.Insertion, Alt: dna.MustParse("ACGTA")},
		{Pos: 1400, Kind: vgraph.Deletion, DelLen: 6},
	}
	pg, err := vgraph.BuildPangenome(ref, variants, 24)
	if err != nil {
		return err
	}
	fmt.Printf("pangenome: %d nodes, %d edges, %d variation sites\n",
		pg.NumNodes(), pg.NumEdges(), pg.NumSites())

	// 2. Sample four haplotypes (allele vectors) and index them in a GBWT.
	var haps [][]vgraph.NodeID
	var hapSeqs []dna.Sequence
	for h := 0; h < 4; h++ {
		alleles := make([]int, pg.NumSites())
		for i := range alleles {
			alleles[i] = rng.Intn(pg.NumAlleles(i))
		}
		path, err := pg.HaplotypePath(alleles)
		if err != nil {
			return err
		}
		seq, err := pg.HaplotypeSeq(alleles)
		if err != nil {
			return err
		}
		if _, err := pg.AddPath(path); err != nil {
			return err
		}
		haps = append(haps, path)
		hapSeqs = append(hapSeqs, seq)
	}
	index, err := gbwt.New(haps)
	if err != nil {
		return err
	}
	fmt.Printf("GBWT: %d haplotypes, %d compressed bytes\n",
		index.NumPaths(), index.CompressedSize())

	// 3. Build the minimizer index and extract seeds for a read cut from
	// haplotype 2 (with one sequencing error planted).
	minIx, err := minimizer.Build(pg.Graph, haps, minimizer.Config{K: 15, W: 8})
	if err != nil {
		return err
	}
	readSeq := hapSeqs[2][700:850].Clone()
	readSeq[70] = (readSeq[70] + 1) & 3
	read := dna.Read{Name: "example-read", Seq: readSeq, Fragment: -1}
	ss, err := seeds.Extract(minIx, &read)
	if err != nil {
		return err
	}
	fmt.Printf("read %s: %d bases, %d seeds\n", read.Name, read.Len(), len(ss))

	// 4. Run the proxy kernels (cluster_seeds + process_until_threshold_c).
	file := &gbz.File{Graph: pg.Graph, Index: index}
	records := []seeds.ReadSeeds{{Read: read, Seeds: ss}}
	res, err := core.Run(file, records, core.Options{Threads: 1})
	if err != nil {
		return err
	}
	for _, e := range res.Extensions[0] {
		fmt.Printf("  extension at %v covering read[%d:%d] score=%d mismatches=%v\n",
			e.StartPos, e.ReadStart, e.ReadEnd, e.Score, e.Mismatches)
	}
	fmt.Printf("mapped in %v with %d cache accesses (%.0f%% hits)\n",
		res.Makespan, res.Cache.Accesses,
		100*float64(res.Cache.Hits)/float64(res.Cache.Accesses))
	return nil
}
