// Yeastpipeline: the complete single-end workflow on the B-yeast input set —
// generate the synthetic pangenome and reads, run the parent emulator (full
// Giraffe-like pipeline, capturing the proxy inputs), run the proxy, and
// validate that both produce identical extensions (§VI-a of the paper).
//
//	go run ./examples/yeastpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/giraffe"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := workload.BYeast().Scaled(0.2) // keep the example quick
	fmt.Printf("generating %s: %d single-end reads of %d bp\n", spec.Name, spec.Reads, spec.ReadLen)
	bundle, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	fmt.Printf("pangenome: %d nodes / %d bp, %d haplotypes\n",
		bundle.Pangenome.NumNodes(), bundle.Pangenome.TotalSeqLen(), spec.Haplotypes)

	// Parent: full pipeline with region instrumentation.
	const threads = 4
	rec := trace.NewRecorder(threads)
	ix, err := giraffe.BuildIndexes(bundle.GBZ())
	if err != nil {
		return err
	}
	parent, err := giraffe.Map(ix, bundle.Reads, giraffe.Options{
		Threads: threads, BatchSize: 128, Trace: rec, CaptureSeeds: true,
	})
	if err != nil {
		return err
	}
	mapped := 0
	for _, al := range parent.Alignments {
		if al.Mapped {
			mapped++
		}
	}
	fmt.Printf("parent mapped %d/%d reads in %v; region shares:\n", mapped, len(bundle.Reads), parent.Makespan)
	for _, sh := range rec.Shares(trace.RegionIO, trace.RegionParse) {
		fmt.Printf("  %-28s %5.1f%%\n", sh.Region, sh.Percent)
	}

	// Proxy on the captured inputs.
	proxy, err := core.Run(bundle.GBZ(), parent.Captured, core.Options{Threads: threads, BatchSize: 128})
	if err != nil {
		return err
	}
	fmt.Printf("proxy makespan %v, cache hit rate %.1f%%\n", proxy.Makespan,
		100*float64(proxy.Cache.Hits)/float64(proxy.Cache.Accesses))

	// Functional validation, both directions.
	rep, err := core.Validate(parent.Extensions, proxy.Extensions)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if !rep.Match() {
		return fmt.Errorf("proxy output diverged from parent")
	}
	return nil
}
