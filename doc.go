// Package repro is a from-scratch Go reproduction of "miniGiraffe: A
// Pangenomic Mapping Proxy App" (IISWC 2025): the proxy application for the
// vg Giraffe pangenome mapper, together with every substrate it depends on —
// variation graphs, the Graph BWT and its GBZ container, minimizer and
// distance indexes, the seed-and-extend kernels, parallel schedulers, the
// parent-pipeline emulator, hardware-counter and machine models, workload
// generators, and the full experiment harness regenerating every table and
// figure of the paper's evaluation.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The root-level bench_test.go holds one benchmark per table and
// figure.
package repro
