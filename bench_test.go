package repro

// One benchmark per table and figure of the paper's evaluation (the mapping
// lives in DESIGN.md §2). Each benchmark exercises the measured core of its
// experiment at a reduced scale; the experiment binaries (cmd/benchreport,
// cmd/scalability, cmd/autotune) regenerate the full printed artefacts.

import (
	"io"
	"math"
	"sync"
	"testing"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/experiments"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchFixture caches one scaled A-human bundle across benchmarks.
type benchFixture struct {
	bundle  *workload.Bundle
	file    *gbz.File
	records []seeds.ReadSeeds
	indexes *giraffe.Indexes
}

var (
	fixOnce sync.Once
	fix     benchFixture
	fixErr  error
)

func fixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		bundle, err := workload.Generate(workload.AHuman().Scaled(0.3))
		if err != nil {
			fixErr = err
			return
		}
		records, err := bundle.CaptureSeeds()
		if err != nil {
			fixErr = err
			return
		}
		file := bundle.GBZ()
		indexes, err := giraffe.BuildIndexes(file)
		if err != nil {
			fixErr = err
			return
		}
		fix = benchFixture{bundle: bundle, file: file, records: records, indexes: indexes}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return &fix
}

// BenchmarkTable1CodeSize measures the repository introspection behind
// Table I (code-size comparison).
func BenchmarkTable1CodeSize(b *testing.B) {
	s := experiments.NewSuite(experiments.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1("."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Timeline measures the 16-thread traced parent run behind
// the Figure 2 timeline.
func BenchmarkFigure2Timeline(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(16)
		if _, err := giraffe.Map(f.indexes, f.bundle.Reads, giraffe.Options{
			Threads: 16, BatchSize: 8, Trace: rec,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Regions measures the traced parent run whose region totals
// produce Figure 3.
func BenchmarkFigure3Regions(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(2)
		if _, err := giraffe.Map(f.indexes, f.bundle.Reads, giraffe.Options{
			Threads: 2, BatchSize: 64, Trace: rec,
		}); err != nil {
			b.Fatal(err)
		}
		rec.Shares(trace.RegionIO, trace.RegionParse)
	}
}

// BenchmarkFigure4Scaling measures the serial parent mapping that anchors
// the Figure 4 strong-scaling projection.
func BenchmarkFigure4Scaling(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := giraffe.Map(f.indexes, f.bundle.Reads, giraffe.Options{Threads: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4TopDown measures the counter-instrumented parent run behind
// the Table IV top-down split.
func BenchmarkTable4TopDown(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := counters.NewDefaultHierarchy()
		if _, err := giraffe.Map(f.indexes, f.bundle.Reads, giraffe.Options{Threads: 1, Probe: h}); err != nil {
			b.Fatal(err)
		}
		c := h.Snapshot(counters.DefaultCycleModel)
		c.TopDownSplit(counters.DefaultCycleModel)
	}
}

// BenchmarkTable5Counters measures the counter-instrumented proxy run of the
// Table V hardware-counter validation.
func BenchmarkTable5Counters(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := counters.NewDefaultHierarchy()
		if _, err := core.Run(f.file, f.records, core.Options{Threads: 1, Probe: h}); err != nil {
			b.Fatal(err)
		}
		h.Snapshot(counters.DefaultCycleModel)
	}
}

// BenchmarkTable6ProxyVsParent measures the proxy side of the Table VI
// execution-time comparison.
func BenchmarkTable6ProxyVsParent(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(f.file, f.records, core.Options{Threads: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Systems measures one serial proxy run plus the full
// four-machine thread-sweep projection of Figure 5.
func BenchmarkFigure5Systems(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(f.file, f.records, core.Options{Threads: 1})
		if err != nil {
			b.Fatal(err)
		}
		w := machine.Workload{
			SerialRefSec: res.Makespan.Seconds(),
			Reads:        len(f.records),
			WorkingSetMB: f.bundle.WorkingSetMB(256, 96),
			MemGB:        1,
		}
		for _, m := range machine.All() {
			for th := 1; th <= m.MaxThreads(); th *= 2 {
				if _, err := m.SimTime(w, th); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkTable7Fastest measures the per-machine fastest-time search of
// Table VII (model-only; the serial anchor is amortised).
func BenchmarkTable7Fastest(b *testing.B) {
	f := fixture(b)
	res, err := core.Run(f.file, f.records, core.Options{Threads: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := machine.Workload{
		SerialRefSec: res.Makespan.Seconds(),
		Reads:        len(f.records),
		WorkingSetMB: f.bundle.WorkingSetMB(256, 96),
		MemGB:        1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range machine.All() {
			best := math.Inf(1)
			for th := 1; th <= m.MaxThreads(); th++ {
				t, err := m.SimTime(w, th)
				if err != nil {
					b.Fatal(err)
				}
				if t < best {
					best = t
				}
			}
		}
	}
}

// BenchmarkFigure6Capacity measures the capacity sweep's extreme points: the
// proxy with caching disabled versus a 4096-entry cache.
func BenchmarkFigure6Capacity(b *testing.B) {
	f := fixture(b)
	for _, bc := range []struct {
		name string
		cap  int
	}{{"nocache", -1}, {"cc256", 256}, {"cc4096", 4096}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(f.file, f.records, core.Options{
					Threads: 1, CacheCapacity: bc.cap,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure7Tuning measures one grid point of the Figure 7 tuning
// sweep per scheduler.
func BenchmarkFigure7Tuning(b *testing.B) {
	f := fixture(b)
	for _, kind := range []sched.Kind{sched.Dynamic, sched.WorkStealing, sched.Static} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(f.file, f.records, core.Options{
					Threads: 2, BatchSize: 128, CacheCapacity: 1024, Scheduler: kind,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable8BestConfig measures a reduced tuning grid — the search that
// produces Table VIII's best-parameter rows.
func BenchmarkTable8BestConfig(b *testing.B) {
	f := fixture(b)
	space := autotune.Space{
		Schedulers: []sched.Kind{sched.Dynamic, sched.WorkStealing},
		BatchSizes: []int{64, 512},
		Capacities: []int{256, 2048},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		grid, err := autotune.RunGrid(f.file, f.records, 2, space, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := grid.Best(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Heatmap measures heat-map generation (grid + projection +
// CSV) from a cached grid.
func BenchmarkFigure8Heatmap(b *testing.B) {
	f := fixture(b)
	space := autotune.Space{
		Schedulers: []sched.Kind{sched.Dynamic},
		BatchSizes: []int{64, 512},
		Capacities: []int{256, 2048},
	}
	grid, err := autotune.RunGrid(f.file, f.records, 2, space, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	grid.Input = f.bundle.Spec.Name
	proj, err := autotune.Project(grid, f.bundle, machine.ChiIntel, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := autotune.WriteHeatmapCSV(io.Discard, grid, proj, space); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidation measures the §VI-a two-way output comparison.
func BenchmarkValidation(b *testing.B) {
	f := fixture(b)
	parent, err := giraffe.Map(f.indexes, f.bundle.Reads, giraffe.Options{Threads: 2, CaptureSeeds: true})
	if err != nil {
		b.Fatal(err)
	}
	proxy, err := core.Run(f.file, parent.Captured, core.Options{Threads: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Validate(parent.Extensions, proxy.Extensions)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Match() {
			b.Fatal(rep)
		}
	}
}
